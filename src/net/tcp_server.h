// TCP transport host: serves a DatabaseServer + DisplayLockManager behind a
// listening socket, speaking the framed protocol of net/wire.h.
//
// Threading model (event-driven; DESIGN.md §11):
//
//   acceptor ──► assigns each connection to one of N I/O event loops
//   I/O loops    epoll reactors (net/event_loop.h) owning every socket:
//                nonblocking reads decode frames incrementally (net/conn.h),
//                CALLBACK_ACK / RESYNC_ACK frames are routed inline, REQUEST
//                frames pass admission control and queue for the worker
//                pool, and all outbound traffic (responses, callbacks,
//                NOTIFY fan-out) drains through per-connection bounded
//                write queues flushed with vectored writev.
//   worker pool  M threads execute queued requests against the
//                DatabaseServer/DLM. A per-connection strand (one scheduled
//                slot, one request per dispatch) preserves the per-client
//                ordering the old thread-per-connection model had, while
//                thousands of connections share a handful of threads.
//
// The loop/worker split matters for correctness exactly like the old
// reader/worker split did: a commit executing on a worker blocks until
// every cached-copy holder acks its invalidation CALLBACK. Those acks
// arrive on *other* connections and are routed by their I/O loops, which
// never execute blocking server work — so concurrent committers cannot
// deadlock the transport even with every worker busy.
//
// NOTIFY fan-out serializes each notification body exactly once: the DLM
// shares one message instance across subscribers with identical content,
// Message::SharedWireBody memoizes the encoded body in a refcounted
// SharedBuf, and each connection's frame is a small per-connection head
// (trace context + envelope metadata) stitched to the shared body by
// writev. transport.fanout.{encodes,reuses} count the effect.
//
// Virtual cost: each metered request charges the shared RpcMeter with the
// *measured* frame byte counts (header + payload, both directions) against
// the server's virtual CPU clock, and the response carries the virtual
// completion time back to the client — the experiments' 1996-era message
// economics keep working over the real wire, now fed by real sizes.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/dlm.h"
#include "net/conn.h"
#include "server/checkpointer.h"
#include "net/event_loop.h"
#include "net/rpc_meter.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/database_server.h"

namespace idba {

/// How far the server escalates against a subscriber that cannot keep up
/// with its NOTIFY stream (DESIGN.md §9). Every policy starts by
/// coalescing queued notifications (latest-version-wins).
enum class SlowSubscriberPolicy {
  /// Never force a resync: when the bounded queue is full and the backlog
  /// will not coalesce, drop the *oldest* notification. Weakest guarantee
  /// (a display whose dropped notification is never followed by another
  /// update stays stale), but no client ever sees a forced refetch.
  kCoalesce,
  /// Default: on overflow, shed the whole backlog and send one RESYNC
  /// notification; the client refetches displayed state (degraded but
  /// eventually consistent, memory strictly bounded).
  kResync,
  /// Like kResync, but a client that forces more than
  /// `slow_subscriber_disconnect_after` overflows is disconnected.
  kDisconnect,
};

struct TransportServerOptions {
  /// TCP port; 0 binds an ephemeral port (see port() after Start).
  uint16_t port = 0;
  /// Numeric IPv4 address to bind; default loopback. "0.0.0.0" serves
  /// non-local clients (front with your own ingress/auth).
  std::string bind_host = "127.0.0.1";
  /// How long a commit waits for a client to ack a cache-invalidation
  /// callback before treating the client as dead and proceeding.
  int64_t callback_ack_timeout_ms = 5000;
  /// Drop a connection that sends no frame (not even a heartbeat PING)
  /// for this long — detects half-open clients. 0 = never. Only enable
  /// when clients run heartbeats faster than this, or idle-but-healthy
  /// clients get cut.
  int64_t idle_timeout_ms = 0;
  /// A request whose queue-wait + execution exceeds this logs one WARN line
  /// (method, duration, client, trace id) and lands in the slow-RPC ring
  /// reported by STATS/idba_stat. 0 disables.
  int64_t slow_rpc_threshold_ms = 250;
  /// Rate limit on those WARN lines: at most one per this interval, with a
  /// suppressed-count carried on the next emitted line. The slow-RPC ring
  /// still records every event. Accept-error WARNs share the limiter
  /// policy. 0 = log every event (old behaviour).
  int64_t slow_rpc_log_interval_ms = 5000;

  // --- Threading (DESIGN.md §11) ----------------------------------------
  /// I/O event loops (epoll reactors). Each owns a share of the accepted
  /// sockets. 0 = auto: half the cores, clamped to [1, 8].
  int io_threads = 0;
  /// Worker threads executing requests. 0 = auto: one per core, at least 4
  /// (workers block on callback acks, so a few spares keep commits moving
  /// on small machines).
  int worker_threads = 0;
  /// Per-connection outbound write-queue watermark: while more than this
  /// many bytes are queued for a socket, its NOTIFY lane stops refilling
  /// and the backlog accumulates in the *bounded* notify inbox where the
  /// overload ladder applies. Responses and callbacks always enqueue.
  size_t write_watermark_bytes = 256 * 1024;

  // --- Overload protection (DESIGN.md §9) -------------------------------
  /// Per-connection bound on requests queued for the worker pool; further
  /// REQUESTs are rejected with Status::Overloaded (+ retry-after hint)
  /// instead of queueing without limit. 0 = unbounded (the old behaviour).
  size_t max_request_queue = 256;
  /// Server-wide cap on requests admitted but not yet executed, across all
  /// connections. At the cap, only *work-starting* methods (Hello, Begin,
  /// out-of-txn reads, lock acquisition, DDL) are shed — Commit/Abort and
  /// in-transaction operations always run, so an admitted transaction can
  /// finish and release its locks even on a saturated server. 0 = unlimited.
  size_t max_inflight = 1024;
  /// Retry-after hint carried in Overloaded responses.
  int64_t overload_retry_after_ms = 50;
  /// Per-connection bound on queued outbound notifications. When full and
  /// the backlog will not coalesce, the slow-subscriber policy applies.
  /// 0 = unbounded.
  size_t max_notify_queue = 256;
  /// Start coalescing queued notifications at this depth rather than only
  /// when the queue is full (0 = only when full).
  size_t notify_coalesce_watermark = 0;
  /// Escalation ladder for subscribers that overflow their notify queue.
  SlowSubscriberPolicy slow_subscriber_policy = SlowSubscriberPolicy::kResync;
  /// kDisconnect only: overflow count after which the client is dropped.
  int slow_subscriber_disconnect_after = 8;
  /// Bound on invalidation CALLBACKs queued to one client. A client that
  /// cannot drain even its callbacks is marked stale (forced resync) and
  /// the committing writers proceed without waiting. 0 = unbounded.
  size_t max_callback_queue = 64;
  /// When > 0, shrink each accepted connection's SO_SNDBUF to this many
  /// bytes — ops/test knob that makes a stalled subscriber's backpressure
  /// reach the server-side queues quickly instead of hiding in kernel
  /// buffers.
  int so_sndbuf = 0;
};

/// Hosts one deployment (server + DLM + bus + meter) behind a socket.
class TransportServer {
 public:
  TransportServer(DatabaseServer* server, DisplayLockManager* dlm,
                  NotificationBus* bus, RpcMeter* meter,
                  TransportServerOptions opts = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Attaches the deployment's background checkpointer so STATS reports
  /// checkpoint progress (last fence LSN, age, pages swept). Optional;
  /// call before Start().
  void set_checkpointer(Checkpointer* cp) { checkpointer_ = cp; }

  /// Binds, listens and starts the I/O loops, worker pool, and acceptor.
  Status Start();
  /// Disconnects everything and joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port(); }
  bool running() const { return running_.load(); }
  /// Resolved thread counts (after the 0 = auto defaults applied).
  int io_threads() const { return resolved_io_threads_; }
  int worker_threads() const { return resolved_worker_threads_; }

  // --- Transport-level metrics (real bytes, not virtual) ----------------
  uint64_t bytes_received() const { return bytes_in_.Get(); }
  uint64_t bytes_sent() const { return bytes_out_.Get(); }
  uint64_t requests_served() const { return requests_.Get(); }
  uint64_t notifications_forwarded() const { return notifies_.Get(); }
  uint64_t connections_accepted() const { return accepts_.Get(); }
  /// NOTIFY bodies actually serialized (once per distinct message)...
  uint64_t fanout_encodes() const { return fanout_encodes_.Get(); }
  /// ...vs NOTIFY frames that reused an already-encoded shared body. For a
  /// fan-out of one update to K identical subscribers: 1 encode, K-1
  /// reuses — the single-serialization invariant, asserted by tests.
  uint64_t fanout_reuses() const { return fanout_reuses_.Get(); }

  // --- Overload / degradation telemetry (also in STATS and idba_stat) ---
  /// REQUEST frames rejected with Status::Overloaded (admission control).
  uint64_t overload_rejections() const { return overload_rejections_.Get(); }
  /// ONEWAY frames dropped under admission control (no response to carry
  /// a status, so they are simply counted).
  uint64_t oneway_shed() const { return oneway_shed_.Get(); }
  /// Requests admitted but not yet finished executing, server-wide.
  size_t inflight() const { return inflight_.load(); }
  /// Notifications merged into an already-queued one (latest-version-wins).
  uint64_t notifications_coalesced() const { return notify_coalesced_.Get(); }
  /// Notifications dropped for slow subscribers (overflow shed +
  /// drop-oldest under kCoalesce policy).
  uint64_t notifications_shed() const { return notify_shed_.Get(); }
  /// RESYNC notifications sent to clients whose backlog was shed.
  uint64_t forced_resyncs() const { return forced_resyncs_.Get(); }
  /// Connections dropped by the kDisconnect escalation (or v1 peers that
  /// cannot be resynced).
  uint64_t slow_disconnects() const { return slow_disconnects_.Get(); }
  /// Invalidation CALLBACKs skipped because the client was already marked
  /// stale (a pending resync clears its whole cache anyway).
  uint64_t callbacks_elided() const { return callbacks_elided_.Get(); }
  /// Callback-ack waits that expired; each marks the client stale.
  uint64_t callback_ack_timeouts() const { return callback_timeouts_.Get(); }

  // --- Introspection (STATS admin RPC, idba_stat, --metrics-interval) ---
  /// One slow request, retained in a bounded ring (most recent last).
  struct SlowRpc {
    std::string method;
    ClientId client = 0;
    int64_t duration_us = 0;  ///< queue wait + execution
    uint64_t trace_id = 0;    ///< 0 when the request was untraced
  };
  std::vector<SlowRpc> SlowRpcLog() const;

  /// Full server state as one JSON object: transport counters, active
  /// sessions, DLM lock table, slow RPCs, and every GlobalMetrics metric.
  std::string StatsJson() const;
  /// The same, pre-formatted for humans (idba_stat prints this verbatim,
  /// so the CLI needs no JSON parser).
  std::string StatsText() const;

  /// Deep lock introspection for the LOCKS admin RPC: the server lock
  /// manager's table (holders, waiters, wait-for edges, top-K contended
  /// OIDs) plus the DLM display-lock table, as one JSON object.
  std::string LocksJson(size_t top_k = 10) const;
  /// Cache-hierarchy introspection for the CACHES admin RPC: buffer-pool
  /// occupancy and dirty ratio, per-client registered-copy counts (the
  /// server's view of the object-cache level), per-client display
  /// subscriptions, and the canonical cache.* registry aggregates.
  std::string CachesJson() const;

 private:
  struct Connection;
  static constexpr size_t kSlowRpcRing = 64;

  void AcceptLoop();
  /// Worker-pool thread: pops one connection strand, executes exactly one
  /// of its queued requests, reschedules the strand if more are queued.
  /// `index` names the thread for the health registry ("worker-<index>").
  void WorkerMain(int index);
  /// Enqueues the connection's strand for the worker pool (deduplicated:
  /// at most one queue entry / executing worker per connection at a time,
  /// which preserves per-client request ordering).
  void ScheduleWork(Connection* conn);
  /// Frame dispatch on the connection's I/O loop thread.
  void OnConnFrame(Connection* conn, const wire::FrameHeader& header,
                   std::vector<uint8_t> payload);
  /// Drains the connection's outbound lanes on its loop thread: pending
  /// invalidation callbacks, an owed forced RESYNC, then the notify inbox —
  /// the last gated on write-queue backpressure.
  void FlushNotifies(Connection* conn);
  /// Unregisters the connection from server/DLM/bus and unblocks waiters.
  /// Safe to call from any thread, more than once.
  void Teardown(Connection* conn);
  void ReapFinished();
  /// Periodic idle scan (loop-0 tick): kills connections whose last read
  /// is older than idle_timeout_ms.
  void ScanIdle();
  /// Rate-limited WARN for accept failures (same limiter policy as slow
  /// RPCs: at most one line per interval, suppressed count carried over).
  void NoteAcceptError(const Status& st);

  void HandleFrame(Connection* conn, const wire::FrameHeader& header,
                   const std::vector<uint8_t>& payload, int64_t enqueued_us);
  /// Builds the bounded notify-inbox options for one connection (policy,
  /// watermarks, escalation hook, metric mirrors).
  InboxOptions NotifyInboxOptions(Connection* conn);
  /// Admission control: true when `header`'s request must be shed instead
  /// of queued (queue bound or in-flight cap hit, and the method is not an
  /// exempt introspection call).
  bool ShouldShed(Connection* conn, const wire::FrameHeader& header,
                  const std::vector<uint8_t>& payload, VTime* client_now);
  /// Queues the Overloaded RESPONSE (status + retry-after hint) directly
  /// from the I/O loop, bypassing the saturated worker pool.
  void WriteOverloadedResponse(Connection* conn,
                               const wire::FrameHeader& header,
                               VTime client_now);
  Status ExecuteMethod(Connection* conn, wire::Method method, Decoder* dec,
                       VTime client_now, int64_t request_bytes,
                       ServerCallInfo* info, Encoder* body, bool* metered);
  void NoteSlowRpc(wire::Method method, ClientId client, int64_t duration_us,
                   uint64_t trace_id);

  DatabaseServer* server_;
  DisplayLockManager* dlm_;
  Checkpointer* checkpointer_ = nullptr;
  NotificationBus* bus_;
  RpcMeter* meter_;
  TransportServerOptions opts_;
  int resolved_io_threads_ = 0;
  int resolved_worker_threads_ = 0;

  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};

  /// I/O reactors; connections are assigned round-robin at accept.
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};

  /// Worker pool and its run queue of connection strands.
  std::vector<std::thread> workers_;
  std::mutex runq_mu_;
  std::condition_variable runq_cv_;
  std::deque<std::shared_ptr<Connection>> runq_;
  bool workers_stop_ = false;  ///< guarded by runq_mu_

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::unordered_set<ClientId> active_clients_;
  /// Serializes DDL (DefineClass/AddAttribute) across connections; the
  /// catalog itself is setup-phase and not internally synchronized.
  std::mutex ddl_mu_;

  MirroredCounter bytes_in_, bytes_out_, requests_, notifies_, accepts_;
  MirroredCounter fanout_encodes_, fanout_reuses_;
  MirroredCounter overload_rejections_, oneway_shed_;
  MirroredCounter notify_coalesced_, notify_shed_, notify_overflows_;
  MirroredCounter forced_resyncs_, slow_disconnects_;
  MirroredCounter callbacks_elided_, callback_timeouts_, callback_overflows_;
  std::atomic<size_t> inflight_{0};
  /// Enqueue-to-run latency of worker dispatches (worker.dispatch_lag_us).
  Histogram* dispatch_lag_ = nullptr;

  mutable std::mutex slow_mu_;
  std::deque<SlowRpc> slow_rpcs_;  ///< bounded to kSlowRpcRing
  int64_t last_slow_log_us_ = 0;   ///< guarded by slow_mu_
  uint64_t slow_suppressed_ = 0;   ///< WARNs withheld since the last one
  int64_t last_accept_log_us_ = 0;     ///< guarded by slow_mu_
  uint64_t accept_err_suppressed_ = 0; ///< guarded by slow_mu_

  // Declared last: unregisters before the state its callback reads.
  ScopedGauge inflight_gauge_;
  /// Per-loop connection-count gauges (net.loop.<i>.conns), registered in
  /// Start and released in Stop before the loops are destroyed.
  std::vector<ScopedGauge> loop_conn_gauges_;
};

}  // namespace idba
