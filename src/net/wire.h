// Length-prefixed binary wire protocol for the client-server transport.
//
// Every frame on the socket is:
//
//   header (13 bytes, little-endian):
//     u32  payload_len          length of everything after the header
//     u8   frame type           FrameType below
//     u64  seq                  correlation id (sender-assigned per direction)
//   payload (payload_len bytes), by frame type:
//     REQUEST / ONEWAY:  u8 method | i64 client_vtime | method body
//     RESPONSE:          u8 status code | string message |
//                        i64 completion_vtime | method body
//     NOTIFY:            u32 from | u32 to | i64 sent_at | i64 arrives_at |
//                        varint virtual_wire_bytes | u8 kind | message body
//     CALLBACK:          u64 oid | u64 new_version
//     CALLBACK_ACK:      (empty)
//
// REQUEST expects exactly one RESPONSE with the same seq on the same
// connection. ONEWAY frames are requests without responses (eviction
// notices and — per the paper §4.1, "display lock requests are not
// acknowledged" in virtual cost terms — they still use REQUEST on the wire
// so a client can order its lock registration before dependent commits).
// NOTIFY and CALLBACK flow server->client over the same connection; a
// CALLBACK (cache invalidation) must be answered with CALLBACK_ACK carrying
// the same seq before the triggering commit completes, reproducing
// callback-locking's invalidate-before-commit guarantee over real sockets.
//
// All integers little-endian via Encoder/Decoder (common/codec.h); the
// Decoder is hardened against truncated/malformed payloads, so a corrupt or
// hostile peer produces Status::Corruption and a dropped connection, never
// out-of-bounds reads.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/vtime.h"
#include "net/message.h"
#include "objectmodel/object.h"
#include "objectmodel/query.h"
#include "txn/txn_manager.h"

namespace idba {

namespace wire {

constexpr size_t kHeaderBytes = 13;
/// Upper bound on a single frame payload; a peer announcing more is corrupt
/// (or hostile) and gets disconnected.
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Protocol revision this build speaks. Negotiated in Hello: each side
/// appends its version as a trailing byte to the Hello request/response
/// body; v1 peers neither send nor read it (their decoders ignore trailing
/// bytes), so absence means v1. v2 adds the traced-frame bit and the
/// TraceInfo payload prefix below, plus the kStats/kTraceDump admin
/// methods. Traced frames are only sent to peers that negotiated >= 2.
constexpr uint8_t kWireVersion = 2;

/// High bit of the frame-type byte: when set, the payload begins with an
/// encoded TraceInfo (trace header). The low 7 bits are the FrameType.
/// v1 decoders reject the bit as an unknown frame type, which is why it is
/// only set after v2 negotiation.
constexpr uint8_t kTracedBit = 0x80;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kNotify = 3,
  kCallback = 4,
  kCallbackAck = 5,
  kOneWay = 6,
  /// Client -> server: "I processed the RESYNC notification with this seq
  /// and cleared my cache" — the server keeps eliding the client's
  /// invalidation callbacks until this arrives (wire v2+ only; v1 peers
  /// never receive RESYNCs).
  kResyncAck = 7,
};

/// RPC method selectors. Wire-stable: append only.
enum class Method : uint8_t {
  kHello = 1,
  kBegin = 2,
  kCommit = 3,
  kCommitValidated = 4,
  kAbort = 5,
  kFetch = 6,
  kFetchCurrent = 7,
  kLockForRead = 8,
  kPut = 9,
  kInsert = 10,
  kErase = 11,
  kScanClass = 12,
  kQuery = 13,
  kAllocateOid = 14,
  kGetVersion = 15,
  kDefineClass = 16,
  kAddAttribute = 17,
  kNoteEvicted = 18,
  kDlmLock = 19,
  kDlmUnlock = 20,
  kDlmLockBatch = 21,
  kDlmUnlockBatch = 22,
  kPing = 23,
  // Admin/introspection (wire v2). Like kPing, callable before Hello.
  kStats = 24,      ///< body: u8 format (0=json, 1=text); response: string
  kTraceDump = 25,  ///< body: u8 format (0=chrome, 1=jsonl), u8 clear; response: string
  // Observability (still wire v2: method additions are append-only and a
  // v1/v2 peer that never sends them never sees them).
  kMetrics = 26,  ///< body: u8 format (0=prometheus text, 1=registry json,
                  ///< 2=timeseries json); response: string
  kLocks = 27,    ///< body: u8 top_k (0 = default 10); response: json string
  kCaches = 28,   ///< body: empty; response: json string
  // Runtime health (PR-8, still append-only wire v2).
  kFlight = 29,   ///< body: empty; response: flight-recorder dump string
  kProfile = 30,  ///< body: u8 action (0=status, 1=start + u32 hz, 2=stop,
                  ///< 3=dump folded stacks); response: string
  // Session recovery (PR-9, append-only wire v2).
  kDlmReregister = 31,  ///< body: i64 sent_at, u64 holder, oid vector —
                        ///< idempotent bulk replay of held display locks
                        ///< after a reconnect to a restarted server
  // Consistency auditing (PR-10, append-only wire v2). Pre-Hello callable
  // and shed-exempt like kMetrics.
  kAudit = 32,  ///< body: empty; response: auditor report json string
};

std::string_view MethodName(Method m);

/// Asynchronous message kinds carried by NOTIFY frames.
enum class NotifyKind : uint8_t {
  kUpdate = 1,
  kIntent = 2,
  /// Server -> client: notifications for this client were shed under
  /// overload; the client must treat its whole view state as stale and
  /// refetch (ResyncNotifyMessage body). v1 peers reject the kind and drop
  /// the frame, which is why slow v1 subscribers are escalated straight to
  /// disconnect instead.
  kResync = 3,
};

struct FrameHeader {
  uint32_t payload_len = 0;
  FrameType type = FrameType::kRequest;
  uint64_t seq = 0;
  bool traced = false;  ///< payload starts with a TraceInfo (wire v2)
};

/// Encodes `h` into exactly kHeaderBytes at out[0..12].
void EncodeHeader(const FrameHeader& h, uint8_t out[kHeaderBytes]);
/// Decodes a header; rejects unknown frame types and oversized payloads.
/// Accepts the traced bit (sets out->traced).
Status DecodeHeader(const uint8_t in[kHeaderBytes], FrameHeader* out);

/// Trace header carried at the front of a traced frame's payload (wire v2).
/// On REQUEST/ONEWAY/NOTIFY/CALLBACK it propagates the sender's context;
/// on RESPONSE it echoes the request's context and reports where the
/// server spent the call's time, letting the client decompose its measured
/// round-trip into network vs queue-wait vs execution without cross-process
/// trace merging.
struct TraceInfo {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;   ///< sender's span (the receiver's parent)
  uint32_t queue_us = 0;  ///< RESPONSE only: server queue wait
  uint32_t exec_us = 0;   ///< RESPONSE only: server execution time
};

void EncodeTraceInfo(const TraceInfo& t, Encoder* enc);
Status DecodeTraceInfo(Decoder* dec, TraceInfo* out);

// --- Status ------------------------------------------------------------
void EncodeStatus(const Status& st, Encoder* enc);
Status DecodeStatus(Decoder* dec, Status* out);

// --- Oid vectors -------------------------------------------------------
void EncodeOidVector(const std::vector<Oid>& oids, Encoder* enc);
Status DecodeOidVector(Decoder* dec, std::vector<Oid>* out);

// --- Object vectors ----------------------------------------------------
void EncodeObjectVector(const std::vector<DatabaseObject>& objs, Encoder* enc);
Status DecodeObjectVector(Decoder* dec, std::vector<DatabaseObject>* out);

// --- CommitResult ------------------------------------------------------
void EncodeCommitResult(const CommitResult& result, Encoder* enc);
Status DecodeCommitResult(Decoder* dec, CommitResult* out);

// --- Read sets (detection-mode validation) -----------------------------
void EncodeReadSet(const std::vector<std::pair<Oid, uint64_t>>& reads,
                   Encoder* enc);
Status DecodeReadSet(Decoder* dec,
                     std::vector<std::pair<Oid, uint64_t>>* out);

/// Envelope metadata + payload of a NOTIFY frame, wire form of net/message.h
/// Envelope. `kind` selects the body decoder (UpdateNotifyMessage /
/// IntentNotifyMessage from core/notification.h, which own their codecs).
struct NotifyFrame {
  uint32_t from = 0;
  uint32_t to = 0;
  VTime sent_at = 0;
  VTime arrives_at = 0;
  uint64_t virtual_wire_bytes = 0;
  NotifyKind kind = NotifyKind::kUpdate;
  std::vector<uint8_t> body;
};

void EncodeNotifyMeta(const NotifyFrame& f, Encoder* enc);
/// Decodes the metadata; leaves `dec` positioned at the message body.
Status DecodeNotifyMeta(Decoder* dec, NotifyFrame* out);

}  // namespace wire

}  // namespace idba
