// Deterministic pseudo-random number generation for workloads and tests.
//
// All stochastic behaviour in the library is seeded explicitly so that
// every experiment is reproducible bit-for-bit.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace idba {

/// xoshiro256** — fast, high-quality, splittable-enough PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  /// Derives an independent generator (for per-thread streams).
  Rng Split() { return Rng(NextU64() ^ 0xA5A5A5A5A5A5A5A5ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Zipf-distributed selector over [0, n), with skew theta (0 = uniform).
/// Precomputes the CDF; O(log n) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta) : cdf_(n) {
    double sum = 0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint64_t Next(Rng& rng) const {
    double u = rng.NextDouble();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace idba
