#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"

namespace idba {

void Histogram::Record(double value) {
  Shard& shard = shards_[ThisThreadId() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.total_count == 0) {
    shard.min = shard.max = value;
  } else {
    shard.min = std::min(shard.min, value);
    shard.max = std::max(shard.max, value);
  }
  ++shard.total_count;
  shard.total_sum += value;
  ++shard.counts[BucketFor(value)];
}

int Histogram::BucketFor(double v) {
  if (v <= 0) return 0;
  // Two buckets per power of two: bucket = 2*log2(v), clamped.
  int b = static_cast<int>(std::floor(2.0 * std::log2(v))) + 2;
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return std::pow(2.0, (b - 2) / 2.0);
}

Histogram::Merged Histogram::Merge() const {
  Merged m;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.total_count == 0) continue;
    if (m.total_count == 0) {
      m.min = shard.min;
      m.max = shard.max;
    } else {
      m.min = std::min(m.min, shard.min);
      m.max = std::max(m.max, shard.max);
    }
    m.total_count += shard.total_count;
    m.total_sum += shard.total_sum;
    for (int b = 0; b < kBuckets; ++b) m.counts[b] += shard.counts[b];
  }
  return m;
}

uint64_t Histogram::count() const { return Merge().total_count; }

double Histogram::sum() const { return Merge().total_sum; }

double Histogram::mean() const {
  Merged m = Merge();
  return m.total_count ? m.total_sum / static_cast<double>(m.total_count) : 0;
}

double Histogram::min() const { return Merge().min; }

double Histogram::max() const { return Merge().max; }

double Histogram::PercentileOf(const Merged& m, double q) {
  if (m.total_count == 0) return 0;
  const double target = q * static_cast<double>(m.total_count);
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += m.counts[b];
    if (static_cast<double>(seen) >= target) {
      // Interpolate between the bucket bounds, clamped to observed range.
      double lo = BucketLowerBound(b);
      double hi = BucketLowerBound(b + 1);
      double v = (lo + hi) / 2.0;
      return std::clamp(v, m.min, m.max);
    }
  }
  return m.max;
}

double Histogram::Percentile(double q) const { return PercentileOf(Merge(), q); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  Merged m = Merge();
  return {m.counts, m.counts + kBuckets};
}

double Histogram::BucketUpperBound(int b) { return BucketLowerBound(b + 1); }

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& c : shard.counts) c = 0;
    shard.total_count = 0;
    shard.total_sum = 0;
    shard.min = shard.max = 0;
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  Merged m = Merge();
  HistogramSnapshot s;
  s.count = m.total_count;
  s.sum = m.total_sum;
  s.mean = m.total_count ? m.total_sum / static_cast<double>(m.total_count) : 0;
  s.min = m.min;
  s.max = m.max;
  s.p50 = PercentileOf(m, 0.5);
  s.p95 = PercentileOf(m, 0.95);
  s.p99 = PercentileOf(m, 0.99);
  return s;
}

std::string Histogram::Summary() const {
  HistogramSnapshot s = Snapshot();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(s.count), s.mean, s.p50, s.p95,
                s.p99, s.min, s.max);
  return buf;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_gauge_token_++;
  gauges_[name][token] = std::move(fn);
  return token;
}

void MetricsRegistry::UnregisterGauge(const std::string& name, uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return;
  it->second.erase(token);
  if (it->second.empty()) gauges_.erase(it);
}

std::map<std::string, uint64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Get();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, fns] : gauges_) {
    double total = 0;
    for (const auto& [token, fn] : fns) total += fn();
    out[name] = total;
  }
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->Snapshot();
  return out;
}

std::map<std::string, Histogram*> MetricsRegistry::HistogramHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram*> out;
  for (const auto& [name, h] : histograms_) out[name] = h.get();
  return out;
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " = " + std::to_string(c->Get()) + "\n";
  }
  char buf[64];
  for (const auto& [name, fns] : gauges_) {
    double total = 0;
    for (const auto& [token, fn] : fns) total += fn();
    std::snprintf(buf, sizeof(buf), "%.3f", total);
    out += name + " ~ " + buf + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " : " + h->Summary() + "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c->Get());
  }
  out += "},\"gauges\":{";
  first = true;
  char buf[256];
  for (const auto& [name, fns] : gauges_) {
    double total = 0;
    for (const auto& [token, fn] : fns) total += fn();
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", name.c_str(), total);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,"
                  "\"p95\":%.3f,\"p99\":%.3f,\"min\":%.3f,\"max\":%.3f}",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean, s.p50, s.p95, s.p99, s.min, s.max);
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace idba
