#include "common/metrics.h"

#include <cmath>
#include <cstdio>
#include <memory>

namespace idba {

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_count_;
  total_sum_ += value;
  ++counts_[BucketFor(value)];
}

int Histogram::BucketFor(double v) {
  if (v <= 0) return 0;
  // Two buckets per power of two: bucket = 2*log2(v), clamped.
  int b = static_cast<int>(std::floor(2.0 * std::log2(v))) + 2;
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0;
  return std::pow(2.0, (b - 2) / 2.0);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_count_ ? total_sum_ / static_cast<double>(total_count_) : 0;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_count_ == 0) return 0;
  const double target = q * static_cast<double>(total_count_);
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target) {
      // Interpolate between the bucket bounds, clamped to observed range.
      double lo = BucketLowerBound(b);
      double hi = BucketLowerBound(b + 1);
      double v = (lo + hi) / 2.0;
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counts_) c = 0;
  total_count_ = 0;
  total_sum_ = 0;
  min_ = max_ = 0;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count()), mean(), Percentile(0.5),
                Percentile(0.95), Percentile(0.99), min(), max());
  return buf;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->Get();
  return out;
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " = " + std::to_string(c->Get()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + " : " + h->Summary() + "\n";
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace idba
