#include "common/status.h"

namespace idba {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kDeadlock: return "Deadlock";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnknown: return "Unknown";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace idba
