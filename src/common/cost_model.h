// Cost model for the simulated 1996-era client-server environment.
//
// The paper's testbed (ObjectStore over a campus LAN, SPARC-class
// workstations) is unavailable; per the reproduction plan (DESIGN.md §2) we
// replace the physical network and disks with a metered cost model. Message
// hops are charged `message_base + bytes/bandwidth`, disk accesses
// `disk_seek + pages * disk_page_transfer`, and CPU work per logical
// operation. Defaults are calibrated so that the paper's lazy 3-message
// update-propagation path lands in the reported 1-2 second band
// (EXPERIMENTS.md E1 documents the calibration).

#pragma once

#include <cstdint>

#include "common/vtime.h"

namespace idba {

/// Tunable virtual-latency parameters. All VTime values are virtual
/// microseconds.
struct CostModelOptions {
  /// Fixed cost of one message hop (wire + protocol stack + scheduling).
  /// 1996 RPC round trips over Ethernet with mid-90s TCP stacks and
  /// process wakeups were commonly hundreds of milliseconds end-to-end for
  /// application-level agents; 200 ms/hop places the lazy propagation path
  /// (5 hops + disk + refresh) inside the paper's 1-2 s observation.
  VTime message_base = 200 * kVMillisecond;

  /// Wire bandwidth in bytes per virtual second (10 Mbit Ethernet ~ 1.25 MB/s).
  int64_t network_bandwidth_bps = 1'250'000;

  /// Disk seek + rotational latency per access.
  VTime disk_seek = 18 * kVMillisecond;

  /// Transfer time per 4 KiB page.
  VTime disk_page_transfer = 2 * kVMillisecond;

  /// Server CPU cost to process one request (lookup, locking, copying).
  VTime server_request_cpu = 4 * kVMillisecond;

  /// Client CPU cost to refresh one display object (derivation + redraw).
  VTime display_refresh_cpu = 12 * kVMillisecond;

  /// Client CPU cost to handle one notification message (DLC dispatch).
  VTime notification_dispatch_cpu = 1 * kVMillisecond;
};

/// Stateless latency calculator over CostModelOptions.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostModelOptions& opts) : opts_(opts) {}

  const CostModelOptions& options() const { return opts_; }

  /// Virtual latency of one message hop carrying `bytes` payload bytes.
  VTime MessageCost(int64_t bytes) const {
    return opts_.message_base +
           (bytes * kVSecond) / opts_.network_bandwidth_bps;
  }

  /// Virtual latency of one disk access touching `pages` pages.
  VTime DiskCost(int64_t pages) const {
    return opts_.disk_seek + pages * opts_.disk_page_transfer;
  }

  VTime ServerRequestCpu() const { return opts_.server_request_cpu; }
  VTime DisplayRefreshCpu() const { return opts_.display_refresh_cpu; }
  VTime NotificationDispatchCpu() const { return opts_.notification_dispatch_cpu; }

 private:
  CostModelOptions opts_;
};

}  // namespace idba
