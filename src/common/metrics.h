// Lightweight counters and histograms used by every subsystem, and a
// registry that experiment harnesses snapshot and print.
//
// Histograms are lock-striped: Record() touches only the calling thread's
// shard (threads map to shards by their small sequential id), so
// instrumenting per-RPC hot paths does not serialize the server the way a
// single global mutex would. Readers merge the shards, which is the rare
// path. bench_micro_core's BM_HistogramRecordContended measures the
// difference.
//
// Components cache Counter*/Histogram* pointers obtained from the registry
// at construction; GetCounter/GetHistogram take the registry mutex and must
// stay off hot paths (notification fan-out, per-RPC accounting).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace idba {

/// Thread-safe monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A per-instance counter that optionally feeds a shared registry counter.
/// Components with many instances per process (buffer pools, object caches,
/// transports) keep exact per-object counts for their accessors while the
/// registry — and therefore STATS/METRICS/Prometheus — sees the canonical
/// aggregate series across all instances.
class MirroredCounter {
 public:
  void BindGlobal(Counter* global) { global_ = global; }
  void Add(uint64_t delta = 1) {
    local_.Add(delta);
    if (global_ != nullptr) global_->Add(delta);
  }
  uint64_t Get() const { return local_.Get(); }
  void Reset() { local_.Reset(); }

 private:
  Counter local_;
  Counter* global_ = nullptr;
};

/// Point-in-time value computed on read (queue depth, bytes cached, dirty
/// ratio). Multiple registrants may share one name — e.g. one ObjectCache
/// per in-process client — and readers see the SUM of all live callbacks.
/// Callbacks run under the registry mutex (so unregistration synchronizes
/// with in-flight snapshots) and must therefore never call back into the
/// registry.
using GaugeFn = std::function<double()>;

/// Point-in-time merged view of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Thread-safe histogram with power-of-two-ish buckets plus exact
/// min/max/sum. Value unit is caller-defined (microseconds, bytes, ...).
class Histogram {
 public:
  void Record(double value);

  uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Approximate quantile via bucket interpolation (q in [0,1]).
  double Percentile(double q) const;
  void Reset();

  /// One consistent merged view (count/mean/percentiles from the same
  /// merge, unlike calling the accessors separately).
  HistogramSnapshot Snapshot() const;

  /// "count=N mean=X p50=... p99=... max=..."
  std::string Summary() const;

  /// Fixed bucket layout, exposed for exporters that need per-bucket counts
  /// (Prometheus `_bucket` series) and for per-window percentile trends
  /// computed from bucket-count deltas (obs/timeseries).
  static constexpr int kNumBuckets = 128;
  /// Merged per-bucket (non-cumulative) counts; size kNumBuckets.
  std::vector<uint64_t> BucketCounts() const;
  /// Inclusive upper bound of bucket `b` (+inf style growth capped at the
  /// last bucket, whose bound exporters should render as +Inf).
  static double BucketUpperBound(int b);

 private:
  static constexpr int kBuckets = kNumBuckets;
  static constexpr int kShards = 8;
  static int BucketFor(double v);
  static double BucketLowerBound(int b);

  /// One lock stripe. Padded to its own cache lines so concurrent writers
  /// on different shards do not false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    uint64_t counts[kBuckets] = {};
    uint64_t total_count = 0;
    double total_sum = 0;
    double min = 0;
    double max = 0;
  };

  /// Merged totals; percentile needs the merged bucket array too.
  struct Merged {
    uint64_t counts[kBuckets] = {};
    uint64_t total_count = 0;
    double total_sum = 0;
    double min = 0;
    double max = 0;
  };
  Merged Merge() const;
  static double PercentileOf(const Merged& m, double q);

  Shard shards_[kShards];
};

/// Named registry of counters, gauges and histograms. Components hold
/// pointers obtained at construction; lookups are not on the hot path.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a gauge callback under `name`; returns a token for
  /// UnregisterGauge. Multiple live registrations of one name are summed on
  /// read. Prefer the RAII ScopedGauge over calling these directly.
  uint64_t RegisterGauge(const std::string& name, GaugeFn fn);
  void UnregisterGauge(const std::string& name, uint64_t token);

  /// Snapshot of all counter values (name -> value).
  std::map<std::string, uint64_t> CounterSnapshot() const;
  /// Snapshot of all gauges (name -> summed value of live registrants).
  std::map<std::string, double> GaugeSnapshot() const;
  /// One consistent snapshot per histogram (name -> merged view).
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;
  /// The histogram objects themselves (stable pointers; histograms are
  /// never removed), for exporters that need bucket-level access.
  std::map<std::string, Histogram*> HistogramHandles() const;

  /// Multi-line human-readable dump of all metrics.
  std::string Dump() const;
  /// One JSON object: {"counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{"count":..,"mean":..,"p50":..,...},...}}.
  std::string DumpJson() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::map<uint64_t, GaugeFn>> gauges_;
  uint64_t next_gauge_token_ = 1;
};

/// RAII gauge registration: registers on construction, unregisters on
/// destruction. Components embed one per exported gauge so an instance's
/// contribution disappears exactly when the instance dies.
class ScopedGauge {
 public:
  ScopedGauge() = default;
  ScopedGauge(MetricsRegistry* reg, std::string name, GaugeFn fn)
      : reg_(reg), name_(std::move(name)) {
    token_ = reg_->RegisterGauge(name_, std::move(fn));
  }
  ~ScopedGauge() { Release(); }
  ScopedGauge(ScopedGauge&& o) noexcept { *this = std::move(o); }
  ScopedGauge& operator=(ScopedGauge&& o) noexcept {
    Release();
    reg_ = o.reg_;
    name_ = std::move(o.name_);
    token_ = o.token_;
    o.reg_ = nullptr;
    return *this;
  }
  ScopedGauge(const ScopedGauge&) = delete;
  ScopedGauge& operator=(const ScopedGauge&) = delete;

  void Release() {
    if (reg_ != nullptr) {
      reg_->UnregisterGauge(name_, token_);
      reg_ = nullptr;
    }
  }

 private:
  MetricsRegistry* reg_ = nullptr;
  std::string name_;
  uint64_t token_ = 0;
};

/// The process-wide registry. Instrumentation in the server, transport and
/// display stack records here (metric names follow `subsystem.verb.unit`,
/// see DESIGN.md "Observability"); idba_serve --metrics-interval and the
/// STATS admin RPC export it.
MetricsRegistry& GlobalMetrics();

}  // namespace idba
