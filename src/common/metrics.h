// Lightweight counters and histograms used by every subsystem, and a
// registry that experiment harnesses snapshot and print.
//
// Histograms are lock-striped: Record() touches only the calling thread's
// shard (threads map to shards by their small sequential id), so
// instrumenting per-RPC hot paths does not serialize the server the way a
// single global mutex would. Readers merge the shards, which is the rare
// path. bench_micro_core's BM_HistogramRecordContended measures the
// difference.
//
// Components cache Counter*/Histogram* pointers obtained from the registry
// at construction; GetCounter/GetHistogram take the registry mutex and must
// stay off hot paths (notification fan-out, per-RPC accounting).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace idba {

/// Thread-safe monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time merged view of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Thread-safe histogram with power-of-two-ish buckets plus exact
/// min/max/sum. Value unit is caller-defined (microseconds, bytes, ...).
class Histogram {
 public:
  void Record(double value);

  uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Approximate quantile via bucket interpolation (q in [0,1]).
  double Percentile(double q) const;
  void Reset();

  /// One consistent merged view (count/mean/percentiles from the same
  /// merge, unlike calling the accessors separately).
  HistogramSnapshot Snapshot() const;

  /// "count=N mean=X p50=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kBuckets = 128;
  static constexpr int kShards = 8;
  static int BucketFor(double v);
  static double BucketLowerBound(int b);

  /// One lock stripe. Padded to its own cache lines so concurrent writers
  /// on different shards do not false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    uint64_t counts[kBuckets] = {};
    uint64_t total_count = 0;
    double total_sum = 0;
    double min = 0;
    double max = 0;
  };

  /// Merged totals; percentile needs the merged bucket array too.
  struct Merged {
    uint64_t counts[kBuckets] = {};
    uint64_t total_count = 0;
    double total_sum = 0;
    double min = 0;
    double max = 0;
  };
  Merged Merge() const;
  static double PercentileOf(const Merged& m, double q);

  Shard shards_[kShards];
};

/// Named registry of counters and histograms. Components hold pointers
/// obtained at construction; lookups are not on the hot path.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter values (name -> value).
  std::map<std::string, uint64_t> CounterSnapshot() const;
  /// Multi-line human-readable dump of all metrics.
  std::string Dump() const;
  /// One JSON object: {"counters":{name:value,...},
  /// "histograms":{name:{"count":..,"mean":..,"p50":..,...},...}}.
  std::string DumpJson() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry. Instrumentation in the server, transport and
/// display stack records here (metric names follow `subsystem.verb.unit`,
/// see DESIGN.md "Observability"); idba_serve --metrics-interval and the
/// STATS admin RPC export it.
MetricsRegistry& GlobalMetrics();

}  // namespace idba
