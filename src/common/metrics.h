// Lightweight counters and histograms used by every subsystem, and a
// registry that experiment harnesses snapshot and print.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace idba {

/// Thread-safe monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Thread-safe histogram with power-of-two-ish buckets plus exact
/// min/max/sum. Value unit is caller-defined (microseconds, bytes, ...).
class Histogram {
 public:
  void Record(double value);

  uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// Approximate quantile via bucket interpolation (q in [0,1]).
  double Percentile(double q) const;
  void Reset();

  /// "count=N mean=X p50=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kBuckets = 128;
  static int BucketFor(double v);
  static double BucketLowerBound(int b);

  mutable std::mutex mu_;
  uint64_t counts_[kBuckets] = {};
  uint64_t total_count_ = 0;
  double total_sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named registry of counters and histograms. Components hold pointers
/// obtained at construction; lookups are not on the hot path.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter values (name -> value).
  std::map<std::string, uint64_t> CounterSnapshot() const;
  /// Multi-line human-readable dump of all metrics.
  std::string Dump() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace idba
