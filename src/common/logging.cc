#include "common/logging.h"

#include <atomic>

namespace idba {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
std::mutex g_mu;
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

void LogLine(LogLevel level, const std::string& component, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kOff: return;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s] %s: %s\n", tag, component.c_str(), msg.c_str());
}

}  // namespace idba
