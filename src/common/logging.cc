#include "common/logging.h"

#include <atomic>
#include <ctime>
#include <sys/time.h>

namespace idba {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kError)};
std::mutex g_mu;

const char* Tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kOff: break;
  }
  return "?";
}

/// "2026-08-06 12:00:00.123" in local time.
void FormatNow(char out[32]) {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  std::tm tm{};
  time_t secs = tv.tv_sec;
  localtime_r(&secs, &tm);
  size_t n = std::strftime(out, 24, "%Y-%m-%d %H:%M:%S", &tm);
  std::snprintf(out + n, 32 - n, ".%03ld", static_cast<long>(tv.tv_usec / 1000));
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void LogLine(LogLevel level, const std::string& component, const std::string& msg) {
  LogLine(level, component, msg, {});
}

void LogLine(LogLevel level, const std::string& component, const std::string& msg,
             std::initializer_list<LogField> fields) {
  if (level == LogLevel::kOff) return;
  char when[32];
  FormatNow(when);
  std::string line = msg;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line.append(key);
    line += '=';
    line += value;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s %s tid=%llu] %s: %s\n", when, Tag(level),
               static_cast<unsigned long long>(ThisThreadId()),
               component.c_str(), line.c_str());
}

}  // namespace idba
