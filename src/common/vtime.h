// Causal virtual time.
//
// The library executes in-process (real threads, real mutexes) but reports
// latencies in *virtual time*: every component owns a VirtualClock and every
// message envelope carries a virtual timestamp. On receive the destination
// clock advances to max(local, arrival), Lamport-style, and processing /
// transmission costs from the CostModel are charged explicitly. This
// reproduces the latency structure of the paper's 1996 client-server testbed
// deterministically, independent of host machine speed.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace idba {

/// Virtual microseconds.
using VTime = int64_t;

constexpr VTime kVMillisecond = 1000;
constexpr VTime kVSecond = 1000 * 1000;

/// Per-component monotonic virtual clock. Thread-safe: several threads may
/// touch a server-side clock concurrently.
class VirtualClock {
 public:
  VTime Now() const { return now_.load(std::memory_order_relaxed); }

  /// Charges `cost` virtual microseconds of local work; returns the new time.
  VTime Advance(VTime cost) {
    return now_.fetch_add(cost, std::memory_order_relaxed) + cost;
  }

  /// Merges an incoming message timestamp: now = max(now, t).
  /// Returns the merged time.
  VTime Observe(VTime t) {
    VTime cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
    return std::max(cur, t);
  }

  void Reset(VTime t = 0) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<VTime> now_{0};
};

}  // namespace idba
