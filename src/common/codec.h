// Byte-level encoding/decoding used for page payloads, WAL records and
// message envelopes. Little-endian fixed-width integers plus LEB128 varints
// and length-prefixed strings.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace idba {

/// Append-only byte encoder.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }

  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Unsigned LEB128.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->push_back(static_cast<uint8_t>(v));
  }

  /// Varint length prefix followed by raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

  size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    uint8_t buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    PutBytes(buf, sizeof(T));
  }

  std::vector<uint8_t>* out_;
};

/// Sequential byte decoder over a borrowed buffer. All getters return
/// Corruption on underflow instead of reading out of bounds.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* v) {
    if (size_ - pos_ < 1) return Underflow("u8");
    *v = data_[pos_++];
    return Status::OK();
  }
  Status GetU16(uint16_t* v) { return GetFixed(v); }
  Status GetU32(uint32_t* v) { return GetFixed(v); }
  Status GetU64(uint64_t* v) { return GetFixed(v); }
  Status GetI64(int64_t* v) {
    uint64_t u = 0;
    IDBA_RETURN_NOT_OK(GetU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetDouble(double* v) {
    uint64_t bits = 0;
    IDBA_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status GetVarint(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (pos_ >= size_) return Underflow("varint");
      uint8_t byte = data_[pos_++];
      // The 10th byte (shift 63) may only contribute its lowest bit; any
      // higher payload bit would overflow uint64_t silently.
      if (shift == 63 && (byte & 0x7E) != 0) {
        return Status::Corruption("varint overflows 64 bits");
      }
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *v = result;
        return Status::OK();
      }
    }
    return Status::Corruption("varint longer than 64 bits");
  }

  Status GetString(std::string* s) {
    uint64_t len;
    IDBA_RETURN_NOT_OK(GetVarint(&len));
    // Compare via subtraction: `pos_ + len` could wrap around for a hostile
    // length prefix and pass a naive bounds check.
    if (len > size_ - pos_) return Underflow("string body");
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > size_ - pos_) return Underflow("skip");
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  Status GetFixed(T* v) {
    if (size_ - pos_ < sizeof(T)) return Underflow("fixed int");
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *v = out;
    return Status::OK();
  }

  Status Underflow(const char* what) {
    return Status::Corruption(std::string("decode underflow reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace idba
