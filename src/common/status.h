// Status / Result error model for the idba library.
//
// The library does not throw exceptions on hot paths; fallible operations
// return a Status (or a Result<T> when they also produce a value), in the
// style of RocksDB / Arrow.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace idba {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,        ///< requested entity (object, page, lock, ...) does not exist
  kAlreadyExists = 2,   ///< insert of an entity that is already present
  kInvalidArgument = 3, ///< malformed input or unsatisfiable request
  kCorruption = 4,      ///< on-disk or wire data failed validation
  kDeadlock = 5,        ///< transaction chosen as deadlock victim
  kAborted = 6,         ///< transaction aborted (explicitly or by conflict)
  kTimedOut = 7,        ///< lock or message wait exceeded its deadline
  kBusy = 8,            ///< resource temporarily unavailable, retry may succeed
  kIOError = 9,         ///< simulated or real disk failure
  kNotSupported = 10,   ///< operation not implemented for this configuration
  kInternal = 11,       ///< invariant violation inside the library
  kUnknown = 12,        ///< outcome indeterminate (e.g. connection lost with a
                        ///< commit in flight: it may or may not have applied)
  kOverloaded = 13,     ///< server shed the request under load; retry later
                        ///< (an Overloaded response carries a retry-after hint)
};

/// Human-readable name of a StatusCode (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy when OK
/// (message is empty) and carry a heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsUnknown() const { return code_ == StatusCode::kUnknown; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error Status. Accessing the value of an errored Result is
/// a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_value;`
  Result(T value) : var_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from error: `return Status::NotFound(...);`
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The error Status (OK if the Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> var_;
};

}  // namespace idba

/// Propagates a non-OK Status out of the current function.
#define IDBA_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::idba::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a Result<T> expression, assigning its value to `lhs` or
/// propagating its error Status.
#define IDBA_ASSIGN_OR_RETURN(lhs, expr)          \
  auto IDBA_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!IDBA_CONCAT_(_res_, __LINE__).ok())        \
    return IDBA_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(IDBA_CONCAT_(_res_, __LINE__)).value()

#define IDBA_CONCAT_(a, b) IDBA_CONCAT_IMPL_(a, b)
#define IDBA_CONCAT_IMPL_(a, b) a##b
