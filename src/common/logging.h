// Minimal leveled logger. Off by default; experiments and examples can
// raise the level. Not a hot-path facility.
//
// Every line carries a wall-clock timestamp and the small sequential id of
// the emitting thread:
//
//   [2026-08-06 12:00:00.123 W tid=3] transport: slow rpc method=Commit ...
//
// Structured fields: LogLine's `fields` overload appends space-separated
// `key=value` pairs after the message, so operators can grep a single line
// for trace ids, durations, and peers without a parsing layer.

#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace idba {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Process-global log level (defaults to kError).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Small sequential id of the calling thread (1, 2, 3, ... in first-use
/// order). Stable for the thread's lifetime; also used as the `tid` of
/// trace spans so log lines and trace events correlate.
uint64_t ThisThreadId();

/// One structured field appended to a log line as ` key=value`.
using LogField = std::pair<std::string_view, std::string>;

/// Writes one line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& component, const std::string& msg);
void LogLine(LogLevel level, const std::string& component, const std::string& msg,
             std::initializer_list<LogField> fields);

}  // namespace idba

#define IDBA_LOG(level, component, msg)                          \
  do {                                                           \
    if (static_cast<int>(::idba::GetLogLevel()) >=               \
        static_cast<int>(level)) {                               \
      ::idba::LogLine(level, (component), (msg));                \
    }                                                            \
  } while (0)

#define IDBA_LOG_FIELDS(level, component, msg, ...)              \
  do {                                                           \
    if (static_cast<int>(::idba::GetLogLevel()) >=               \
        static_cast<int>(level)) {                               \
      ::idba::LogLine(level, (component), (msg), __VA_ARGS__);   \
    }                                                            \
  } while (0)

#define IDBA_LOG_INFO(component, msg) IDBA_LOG(::idba::LogLevel::kInfo, component, msg)
#define IDBA_LOG_WARN(component, msg) IDBA_LOG(::idba::LogLevel::kWarn, component, msg)
#define IDBA_LOG_DEBUG(component, msg) IDBA_LOG(::idba::LogLevel::kDebug, component, msg)
#define IDBA_LOG_ERROR(component, msg) IDBA_LOG(::idba::LogLevel::kError, component, msg)
