// Minimal leveled logger. Off by default; experiments and examples can
// raise the level. Not a hot-path facility.

#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace idba {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Process-global log level (defaults to kError).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Writes one line to stderr if `level` is enabled.
void LogLine(LogLevel level, const std::string& component, const std::string& msg);

}  // namespace idba

#define IDBA_LOG(level, component, msg)                          \
  do {                                                           \
    if (static_cast<int>(::idba::GetLogLevel()) >=               \
        static_cast<int>(level)) {                               \
      ::idba::LogLine(level, (component), (msg));                \
    }                                                            \
  } while (0)

#define IDBA_LOG_INFO(component, msg) IDBA_LOG(::idba::LogLevel::kInfo, component, msg)
#define IDBA_LOG_DEBUG(component, msg) IDBA_LOG(::idba::LogLevel::kDebug, component, msg)
#define IDBA_LOG_ERROR(component, msg) IDBA_LOG(::idba::LogLevel::kError, component, msg)
