// Client database cache (the paper's "client database caching", §2.2).
//
// Caches whole DatabaseObjects across transaction boundaries under the
// avoidance-based protocol: entries are guaranteed valid because the server
// calls back (InvalidateCached) before any update commit completes.
// Replacement is LRU over a byte budget — deliberately *not* controllable
// by the GUI, which is exactly the drawback (§2.2) the display cache fixes.

#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/metrics.h"
#include "objectmodel/object.h"
#include "server/callback_manager.h"

namespace idba {

struct ObjectCacheOptions {
  size_t capacity_bytes = 4 * 1024 * 1024;
};

/// Eviction observer (the client runtime reports drops to the server so
/// the callback registry stays tight).
using EvictionCallback = std::function<void(Oid)>;

/// Thread-safe LRU object cache implementing the server's callback
/// interface.
class ObjectCache : public CacheCallbackHandler {
 public:
  explicit ObjectCache(ObjectCacheOptions opts = {});

  /// Returns the cached copy if present (valid by protocol).
  std::optional<DatabaseObject> Get(Oid oid);

  /// Inserts/overwrites a copy, evicting LRU entries over budget.
  void Put(const DatabaseObject& obj);

  /// Server callback: drop the copy (a newer version committed).
  void InvalidateCached(Oid oid, uint64_t new_version) override;

  /// Drops an entry locally (no server involvement).
  void Drop(Oid oid);
  void Clear();

  void set_eviction_callback(EvictionCallback cb) { on_evict_ = std::move(cb); }

  bool Contains(Oid oid) const;
  size_t entry_count() const;
  size_t bytes_used() const;
  size_t capacity_bytes() const { return opts_.capacity_bytes; }

  uint64_t hits() const { return hits_.Get(); }
  uint64_t misses() const { return misses_.Get(); }
  uint64_t invalidations() const { return invalidations_.Get(); }
  uint64_t evictions() const { return evictions_.Get(); }

 private:
  struct Entry {
    DatabaseObject obj;
    size_t bytes;
    std::list<Oid>::iterator lru_pos;
  };
  void EvictIfNeededLocked(std::vector<Oid>* evicted);

  ObjectCacheOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<Oid, Entry> entries_;
  std::list<Oid> lru_;  // front = least recently used
  size_t bytes_used_ = 0;
  EvictionCallback on_evict_;
  MirroredCounter hits_, misses_, invalidations_, evictions_;
  // Declared last so the gauges unregister before the cache state they read.
  ScopedGauge entries_gauge_, bytes_gauge_;
};

}  // namespace idba
