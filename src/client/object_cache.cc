#include "client/object_cache.h"

namespace idba {

ObjectCache::ObjectCache(ObjectCacheOptions opts) : opts_(opts) {
  // Canonical "client database cache" level: the registry sums over every
  // in-process client; per-instance accessors stay exact.
  MetricsRegistry& reg = GlobalMetrics();
  hits_.BindGlobal(reg.GetCounter("cache.object.hits"));
  misses_.BindGlobal(reg.GetCounter("cache.object.misses"));
  invalidations_.BindGlobal(reg.GetCounter("cache.object.invalidations"));
  evictions_.BindGlobal(reg.GetCounter("cache.object.evictions"));
  entries_gauge_ = ScopedGauge(&reg, "cache.object.entries",
                               [this] { return double(entry_count()); });
  bytes_gauge_ = ScopedGauge(&reg, "cache.object.bytes_used",
                             [this] { return double(bytes_used()); });
}

std::optional<DatabaseObject> ObjectCache::Get(Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) {
    misses_.Add();
    return std::nullopt;
  }
  hits_.Add();
  lru_.erase(it->second.lru_pos);
  lru_.push_back(oid);
  it->second.lru_pos = std::prev(lru_.end());
  return it->second.obj;
}

void ObjectCache::Put(const DatabaseObject& obj) {
  std::vector<Oid> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t bytes = obj.MemoryBytes();
    auto it = entries_.find(obj.oid());
    if (it != entries_.end()) {
      bytes_used_ -= it->second.bytes;
      lru_.erase(it->second.lru_pos);
      entries_.erase(it);
    }
    lru_.push_back(obj.oid());
    entries_[obj.oid()] = Entry{obj, bytes, std::prev(lru_.end())};
    bytes_used_ += bytes;
    EvictIfNeededLocked(&evicted);
  }
  if (on_evict_) {
    for (Oid oid : evicted) on_evict_(oid);
  }
}

void ObjectCache::EvictIfNeededLocked(std::vector<Oid>* evicted) {
  while (bytes_used_ > opts_.capacity_bytes && lru_.size() > 1) {
    Oid victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
    evictions_.Add();
    evicted->push_back(victim);
  }
}

void ObjectCache::InvalidateCached(Oid oid, uint64_t /*new_version*/) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  invalidations_.Add();
}

void ObjectCache::Drop(Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ObjectCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

bool ObjectCache::Contains(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(oid) != 0;
}

size_t ObjectCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t ObjectCache::bytes_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_used_;
}

}  // namespace idba
