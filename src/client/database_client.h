// Client runtime: the application-facing handle to the database.
//
// Owns the client database cache (second level of the paper's memory
// hierarchy), a virtual clock for the GUI/user thread, and an inbox for
// asynchronous notifications (the Display Lock Client in src/core pumps
// it). Every server interaction charges calibrated virtual latency through
// the shared RpcMeter; cache hits cost nothing — the avoidance-based
// protocol guarantees cached copies are valid.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "client/object_cache.h"
#include "net/inbox.h"
#include "net/notification_bus.h"
#include "net/rpc_meter.h"
#include "server/database_server.h"

namespace idba {

/// Client cache consistency family (paper §3.3). Avoidance (the default,
/// and the paper's choice for displays) guarantees cached copies are valid
/// via server callbacks; detection allows stale copies and validates a
/// transaction's optimistic reads at commit, aborting on staleness.
enum class ConsistencyMode { kAvoidance, kDetection };

struct DatabaseClientOptions {
  ObjectCacheOptions cache;
  /// Report cache evictions to the server (keeps the callback registry
  /// tight; piggybacked on other traffic in real systems, so free here).
  bool report_evictions = true;
  ConsistencyMode consistency = ConsistencyMode::kAvoidance;
};

/// One per application process. Thread-compatible: the application drives
/// it from its user thread; the notification pump may concurrently touch
/// the cache (which is internally synchronized).
class DatabaseClient {
 public:
  DatabaseClient(DatabaseServer* server, ClientId id, RpcMeter* meter,
                 NotificationBus* bus, DatabaseClientOptions opts = {});
  ~DatabaseClient();

  DatabaseClient(const DatabaseClient&) = delete;
  DatabaseClient& operator=(const DatabaseClient&) = delete;

  ClientId id() const { return id_; }
  VirtualClock& clock() { return clock_; }
  Inbox& inbox() { return inbox_; }
  ObjectCache& cache() { return cache_; }
  DatabaseServer& server() { return *server_; }
  const SchemaCatalog& schema() const { return server_->schema(); }

  // --- Transactions ----------------------------------------------------
  TxnId Begin();

  /// Transactional read (S lock at the server on a miss; free on a hit).
  Result<DatabaseObject> Read(TxnId txn, Oid oid);

  /// Degree-0 read of the latest committed image (display building).
  Result<DatabaseObject> ReadCurrent(Oid oid);

  Status Write(TxnId txn, DatabaseObject obj);
  Status Insert(TxnId txn, DatabaseObject obj);
  Status EraseObject(TxnId txn, Oid oid);

  Result<CommitResult> Commit(TxnId txn);
  Status Abort(TxnId txn);

  /// Degree-0 scan used to populate displays.
  Result<std::vector<DatabaseObject>> ScanClass(ClassId cls,
                                                bool include_subclasses = false);

  /// Degree-0 server-side predicate query; matches enter the cache.
  Result<std::vector<DatabaseObject>> RunQuery(const ObjectQuery& query);

  Oid AllocateOid() { return server_->AllocateOid(); }

  uint64_t rpcs_issued() const { return rpcs_.Get(); }
  ConsistencyMode consistency() const { return opts_.consistency; }
  /// Validation aborts suffered (detection mode only).
  uint64_t validation_aborts() const { return validation_aborts_.Get(); }

 private:
  void PreObserve();
  void Charge(const ServerCallInfo& info);
  void RecordRead(TxnId txn, const DatabaseObject& obj);

  DatabaseServer* server_;
  ClientId id_;
  RpcMeter* meter_;
  NotificationBus* bus_;
  DatabaseClientOptions opts_;
  ObjectCache cache_;
  Inbox inbox_;
  VirtualClock clock_;
  Counter rpcs_;
  Counter validation_aborts_;
  // Detection mode: optimistic read sets per open transaction.
  std::mutex read_sets_mu_;
  std::unordered_map<TxnId, std::vector<std::pair<Oid, uint64_t>>> read_sets_;
};

}  // namespace idba
