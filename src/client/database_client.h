// Client runtime: the application-facing handle to the database.
//
// Owns the client database cache (second level of the paper's memory
// hierarchy), a virtual clock for the GUI/user thread, and an inbox for
// asynchronous notifications (the Display Lock Client in src/core pumps
// it). Every server interaction charges calibrated virtual latency through
// the shared RpcMeter; cache hits cost nothing — the avoidance-based
// protocol guarantees cached copies are valid.

#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "client/client_api.h"
#include "client/object_cache.h"
#include "net/inbox.h"
#include "net/notification_bus.h"
#include "net/rpc_meter.h"
#include "server/database_server.h"

namespace idba {

struct DatabaseClientOptions {
  ObjectCacheOptions cache;
  /// Report cache evictions to the server (keeps the callback registry
  /// tight; piggybacked on other traffic in real systems, so free here).
  bool report_evictions = true;
  ConsistencyMode consistency = ConsistencyMode::kAvoidance;
  /// Bounds for the notification inbox (0 = unbounded, the default).
  /// Bounding adds the coalesce/shed/overflow degradation ladder of
  /// net/inbox.h; the DLC pump answers an overflow with a full resync.
  InboxOptions inbox;
};

/// One per application process. Thread-compatible: the application drives
/// it from its user thread; the notification pump may concurrently touch
/// the cache (which is internally synchronized).
class DatabaseClient : public ClientApi {
 public:
  DatabaseClient(DatabaseServer* server, ClientId id, RpcMeter* meter,
                 NotificationBus* bus, DatabaseClientOptions opts = {});
  ~DatabaseClient() override;

  DatabaseClient(const DatabaseClient&) = delete;
  DatabaseClient& operator=(const DatabaseClient&) = delete;

  ClientId id() const override { return id_; }
  VirtualClock& clock() override { return clock_; }
  Inbox& inbox() override { return inbox_; }
  ObjectCache& cache() override { return cache_; }
  DatabaseServer& server() { return *server_; }
  const SchemaCatalog& schema() const override { return server_->schema(); }
  const CostModel& cost_model() const override { return meter_->cost_model(); }

  // --- Schema administration (direct catalog access; setup phase) ------
  Result<ClassId> DefineClass(const std::string& name,
                              ClassId base = 0) override {
    return server_->schema().DefineClass(name, base);
  }
  Status AddAttribute(ClassId cls, const std::string& name, ValueType type,
                      Value default_value = Value()) override {
    return server_->schema().AddAttribute(cls, name, type,
                                          std::move(default_value));
  }

  // --- Transactions ----------------------------------------------------
  Result<TxnId> BeginTxn() override;

  /// Transactional read (S lock at the server on a miss; free on a hit).
  Result<DatabaseObject> Read(TxnId txn, Oid oid) override;

  /// Degree-0 read of the latest committed image (display building).
  Result<DatabaseObject> ReadCurrent(Oid oid) override;

  Status Write(TxnId txn, DatabaseObject obj) override;
  Status Insert(TxnId txn, DatabaseObject obj) override;
  Status EraseObject(TxnId txn, Oid oid) override;

  Result<CommitResult> Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;

  /// Degree-0 scan used to populate displays.
  Result<std::vector<DatabaseObject>> ScanClass(
      ClassId cls, bool include_subclasses = false) override;

  /// Degree-0 server-side predicate query; matches enter the cache.
  Result<std::vector<DatabaseObject>> RunQuery(const ObjectQuery& query) override;

  Result<Oid> NewOid() override { return server_->AllocateOid(); }

  Result<uint64_t> LatestVersion(Oid oid) override {
    IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, server_->heap().Read(oid));
    return obj.version();
  }

  uint64_t rpcs_issued() const override { return rpcs_.Get(); }
  ConsistencyMode consistency() const override { return opts_.consistency; }
  /// Validation aborts suffered (detection mode only).
  uint64_t validation_aborts() const override { return validation_aborts_.Get(); }

 private:
  void PreObserve();
  void Charge(const ServerCallInfo& info);
  void RecordRead(TxnId txn, const DatabaseObject& obj);

  DatabaseServer* server_;
  ClientId id_;
  RpcMeter* meter_;
  NotificationBus* bus_;
  DatabaseClientOptions opts_;
  ObjectCache cache_;
  Inbox inbox_;
  VirtualClock clock_;
  Counter rpcs_;
  Counter validation_aborts_;
  // Detection mode: optimistic read sets per open transaction.
  std::mutex read_sets_mu_;
  std::unordered_map<TxnId, std::vector<std::pair<Oid, uint64_t>>> read_sets_;
};

}  // namespace idba
