// Transaction retry helper: runs a read-modify-write body with automatic
// retry on deadlock / validation-abort / busy outcomes — the loop every
// interactive application otherwise writes by hand.

#pragma once

#include <functional>

#include "client/client_api.h"

namespace idba {

struct TxnRetryOptions {
  int max_attempts = 10;
};

struct TxnRetryResult {
  Status status;      ///< final outcome
  int attempts = 0;   ///< total tries (1 = first try succeeded)
  CommitResult commit;  ///< valid when status.ok()
};

/// Runs `body(client, txn)` in a fresh transaction, committing afterwards.
/// On Deadlock / Aborted / TimedOut / Busy from the body or the commit,
/// aborts (if still active) and retries up to `max_attempts`. Any other
/// error aborts and returns immediately.
inline TxnRetryResult RunTransaction(
    ClientApi* client,
    const std::function<Status(ClientApi&, TxnId)>& body,
    TxnRetryOptions opts = {}) {
  TxnRetryResult result;
  for (result.attempts = 1; result.attempts <= opts.max_attempts;
       ++result.attempts) {
    TxnId txn = client->Begin();
    Status st = body(*client, txn);
    if (st.ok()) {
      auto commit = client->Commit(txn);
      if (commit.ok()) {
        result.status = Status::OK();
        result.commit = std::move(commit).value();
        return result;
      }
      st = commit.status();
      // CommitValidated already aborted server-side on validation failure;
      // for other commit errors the txn is finished too.
    } else {
      (void)client->Abort(txn);
    }
    const bool retryable =
        st.IsDeadlock() || st.IsAborted() || st.IsTimedOut() || st.IsBusy();
    if (!retryable) {
      result.status = st;
      return result;
    }
    result.status = st;  // keep the latest failure in case we run out
  }
  --result.attempts;
  return result;
}

}  // namespace idba
