// Transaction retry helper: runs a read-modify-write body with automatic
// retry on deadlock / validation-abort / busy outcomes — the loop every
// interactive application otherwise writes by hand.
//
// Failure semantics over a remote backend: an RPC that misses its deadline
// returns TimedOut (the connection survives; a plain retry is fine), while
// a connection lost with a commit in flight returns Status::Unknown — the
// commit may or may not have applied. Retrying an Unknown outcome is safe
// *because* the body is a read-modify-write run in a fresh transaction: it
// re-reads current state (which reflects the first commit iff it applied)
// and re-derives its writes, exactly like a user pressing "retry". Bodies
// that blindly re-send absolute effects without reading (rare here) should
// set retry_unknown = false and surface the outcome to the user.

#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "client/client_api.h"
#include "common/rng.h"

namespace idba {

struct TxnRetryOptions {
  int max_attempts = 10;
  /// Also retry commits whose outcome is Unknown (connection lost with the
  /// commit in flight). See the header comment for why this is safe for
  /// read-modify-write bodies.
  bool retry_unknown = true;
  /// Invoked before retrying after a transport-flavored failure (Unknown
  /// outcome or IOError) — e.g. RemoteDatabaseClient::Reconnect. Without
  /// it, IOError is terminal (an Unknown outcome still retries, in case
  /// something else repaired the connection). A non-OK return stops the
  /// loop and becomes the final status.
  std::function<Status()> recover;
  /// Milliseconds to sleep before retry number `attempt` (1 = before the
  /// second try) that failed with `st`. Return 0 for no sleep (the default
  /// when unset, preserving the tight-loop behaviour). Regardless of the
  /// hook, an Overloaded failure always waits at least the server's
  /// retry-after hint (client->retry_after_hint_ms()) — cooperating with
  /// admission control instead of hammering a shedding server.
  std::function<int64_t(int attempt, const Status& st)> backoff;
};

/// Canned backoff hook: capped exponential with full jitter — sleep is
/// uniform in [0, min(base * 2^(attempt-1), cap)]. Deterministic for a
/// given seed; distinct clients should seed with their client id so their
/// retries decorrelate.
inline std::function<int64_t(int, const Status&)>
ExponentialBackoffWithJitter(uint64_t seed, int64_t base_ms = 10,
                             int64_t cap_ms = 1000) {
  auto rng = std::make_shared<Rng>(seed);
  return [rng, base_ms, cap_ms](int attempt, const Status&) -> int64_t {
    int64_t ceiling = std::max<int64_t>(base_ms, 1);
    for (int i = 1; i < attempt && ceiling < cap_ms; ++i) ceiling *= 2;
    ceiling = std::min(ceiling, std::max<int64_t>(cap_ms, 1));
    return rng->NextInRange(0, ceiling);
  };
}

struct TxnRetryResult {
  Status status;      ///< final outcome
  int attempts = 0;   ///< total tries (1 = first try succeeded)
  CommitResult commit;  ///< valid when status.ok()
};

/// Runs `body(client, txn)` in a fresh transaction, committing afterwards.
/// On Deadlock / Aborted / TimedOut / Busy — or Unknown when
/// opts.retry_unknown — from the begin, the body, or the commit, aborts
/// (if still active) and retries up to `max_attempts`. Any other error
/// aborts and returns immediately.
inline TxnRetryResult RunTransaction(
    ClientApi* client,
    const std::function<Status(ClientApi&, TxnId)>& body,
    TxnRetryOptions opts = {}) {
  TxnRetryResult result;
  for (result.attempts = 1; result.attempts <= opts.max_attempts;
       ++result.attempts) {
    Status st;
    Result<TxnId> begun = client->BeginTxn();
    if (begun.ok()) {
      TxnId txn = begun.value();
      st = body(*client, txn);
      if (st.ok()) {
        auto commit = client->Commit(txn);
        if (commit.ok()) {
          result.status = Status::OK();
          result.commit = std::move(commit).value();
          return result;
        }
        st = commit.status();
        // CommitValidated already aborted server-side on validation
        // failure; for other commit errors the txn is finished too.
      } else {
        (void)client->Abort(txn);
      }
    } else {
      st = begun.status();
    }
    const bool transport_failure =
        st.IsUnknown() || st.code() == StatusCode::kIOError;
    const bool retryable =
        st.IsDeadlock() || st.IsAborted() || st.IsTimedOut() || st.IsBusy() ||
        st.IsOverloaded() || (st.IsUnknown() && opts.retry_unknown) ||
        (transport_failure && opts.recover != nullptr &&
         (!st.IsUnknown() || opts.retry_unknown));
    if (!retryable) {
      result.status = st;
      return result;
    }
    if (transport_failure && opts.recover) {
      Status recovered = opts.recover();
      if (!recovered.ok()) {
        result.status = recovered;
        return result;
      }
    }
    // Back off before the next attempt: the hook's choice, floored by the
    // server's retry-after hint when the server explicitly shed us.
    int64_t sleep_ms =
        opts.backoff ? std::max<int64_t>(opts.backoff(result.attempts, st), 0)
                     : 0;
    if (st.IsOverloaded()) {
      sleep_ms = std::max(sleep_ms, client->retry_after_hint_ms());
    }
    if (sleep_ms > 0 && result.attempts < opts.max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    result.status = st;  // keep the latest failure in case we run out
  }
  --result.attempts;
  return result;
}

}  // namespace idba
