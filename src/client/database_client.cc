#include "client/database_client.h"

namespace idba {

DatabaseClient::DatabaseClient(DatabaseServer* server, ClientId id, RpcMeter* meter,
                               NotificationBus* bus, DatabaseClientOptions opts)
    : server_(server), id_(id), meter_(meter), bus_(bus), opts_(opts),
      cache_(opts.cache), inbox_(opts.inbox) {
  if (opts_.report_evictions) {
    cache_.set_eviction_callback(
        [this](Oid oid) { server_->NoteEvicted(id_, oid); });
  }
  server_->ConnectClient(id_, &cache_);
  if (bus_ != nullptr) bus_->Register(static_cast<EndpointId>(id_), &inbox_);
}

DatabaseClient::~DatabaseClient() {
  if (bus_ != nullptr) bus_->Unregister(static_cast<EndpointId>(id_));
  server_->DisconnectClient(id_);
  inbox_.Close();
}

void DatabaseClient::PreObserve() {
  // Push the request's arrival into the server clock before the call runs,
  // so server-side events (commit hooks reading the commit time) observe a
  // causally correct clock.
  meter_->ObserveRequest(clock_.Now(), &server_->cpu_clock());
}

void DatabaseClient::Charge(const ServerCallInfo& info) {
  rpcs_.Add();
  VTime done = meter_->ChargeRoundTrip(clock_.Now(), &server_->cpu_clock(),
                                       info.request_bytes, info.response_bytes,
                                       info.page_misses, info.callbacks);
  clock_.Observe(done);
}

Result<TxnId> DatabaseClient::BeginTxn() {
  // Begin is piggybacked on the first request in real systems; free here.
  // In-process it cannot fail.
  return server_->Begin(id_);
}

void DatabaseClient::RecordRead(TxnId txn, const DatabaseObject& obj) {
  std::lock_guard<std::mutex> lock(read_sets_mu_);
  read_sets_[txn].emplace_back(obj.oid(), obj.version());
}

Result<DatabaseObject> DatabaseClient::Read(TxnId txn, Oid oid) {
  if (auto cached = cache_.Get(oid)) {
    if (opts_.consistency == ConsistencyMode::kDetection) {
      // Detection: optimistic — remember the version we acted on so the
      // commit can validate it.
      RecordRead(txn, *cached);
      return *cached;
    }
    // Avoidance: the copy is valid, but an update transaction acting on it
    // must hold the S lock so no writer can slip a commit between this
    // read and our own commit. (Real callback-locking caches the lock too;
    // without lock caching the grant costs a small lock-only round trip.
    // Display reads use ReadCurrent and stay communication-free.)
    ServerCallInfo lock_info;
    PreObserve();
    Status st = server_->LockForRead(id_, txn, oid, &lock_info);
    Charge(lock_info);
    IDBA_RETURN_NOT_OK(st);
    // Re-check: the copy may have been invalidated while we waited for the
    // lock; with S now held, a present copy is guaranteed current.
    if (auto still = cache_.Get(oid)) return *still;
    // Fall through to fetch (S lock already held, fetch re-grants cheaply).
  }
  ServerCallInfo info;
  PreObserve();
  Result<DatabaseObject> obj = Status::OK();
  if (opts_.consistency == ConsistencyMode::kDetection) {
    // Optimistic read: no S lock held, copy not tracked by the server.
    obj = server_->FetchCurrent(id_, oid, &info, /*register_copy=*/false);
    if (obj.ok()) RecordRead(txn, obj.value());
  } else {
    obj = server_->Fetch(id_, txn, oid, &info);
  }
  Charge(info);
  if (obj.ok()) cache_.Put(obj.value());
  return obj;
}

Result<DatabaseObject> DatabaseClient::ReadCurrent(Oid oid) {
  if (auto cached = cache_.Get(oid)) return *cached;
  ServerCallInfo info;
  PreObserve();
  auto obj = server_->FetchCurrent(
      id_, oid, &info,
      /*register_copy=*/opts_.consistency == ConsistencyMode::kAvoidance);
  Charge(info);
  if (obj.ok()) cache_.Put(obj.value());
  return obj;
}

Status DatabaseClient::Write(TxnId txn, DatabaseObject obj) {
  ServerCallInfo info;
  PreObserve();
  Status st = server_->Put(id_, txn, std::move(obj), &info);
  Charge(info);
  return st;
}

Status DatabaseClient::Insert(TxnId txn, DatabaseObject obj) {
  ServerCallInfo info;
  PreObserve();
  Status st = server_->Insert(id_, txn, std::move(obj), &info);
  Charge(info);
  return st;
}

Status DatabaseClient::EraseObject(TxnId txn, Oid oid) {
  ServerCallInfo info;
  PreObserve();
  Status st = server_->Erase(id_, txn, oid, &info);
  Charge(info);
  return st;
}

Result<CommitResult> DatabaseClient::Commit(TxnId txn) {
  ServerCallInfo info;
  PreObserve();
  Result<CommitResult> result = Status::OK();
  if (opts_.consistency == ConsistencyMode::kDetection) {
    std::vector<std::pair<Oid, uint64_t>> read_set;
    {
      std::lock_guard<std::mutex> lock(read_sets_mu_);
      auto it = read_sets_.find(txn);
      if (it != read_sets_.end()) {
        read_set = std::move(it->second);
        read_sets_.erase(it);
      }
    }
    result = server_->CommitValidated(id_, txn, read_set, &info);
    if (!result.ok() && result.status().IsAborted()) {
      validation_aborts_.Add();
      // Our optimistic copies proved stale; drop them so the retry
      // re-fetches current images.
      for (const auto& [oid, version] : read_set) cache_.Drop(oid);
    }
  } else {
    result = server_->Commit(id_, txn, &info);
  }
  Charge(info);
  if (result.ok()) {
    // The writer's own cache is refreshed from the commit reply
    // (write-all includes the writer's copy).
    for (const DatabaseObject& obj : result.value().updated) {
      if (cache_.Contains(obj.oid())) cache_.Put(obj);
    }
    for (Oid oid : result.value().erased) cache_.Drop(oid);
  }
  return result;
}

Status DatabaseClient::Abort(TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(read_sets_mu_);
    read_sets_.erase(txn);
  }
  ServerCallInfo info;
  PreObserve();
  Status st = server_->Abort(id_, txn, &info);
  Charge(info);
  return st;
}

Result<std::vector<DatabaseObject>> DatabaseClient::RunQuery(
    const ObjectQuery& query) {
  ServerCallInfo info;
  PreObserve();
  auto objs = server_->ExecuteQuery(id_, query, &info);
  Charge(info);
  if (objs.ok()) {
    for (const DatabaseObject& obj : objs.value()) cache_.Put(obj);
  }
  return objs;
}

Result<std::vector<DatabaseObject>> DatabaseClient::ScanClass(
    ClassId cls, bool include_subclasses) {
  ServerCallInfo info;
  PreObserve();
  auto objs = server_->ScanClass(id_, cls, include_subclasses, &info);
  Charge(info);
  if (objs.ok()) {
    for (const DatabaseObject& obj : objs.value()) cache_.Put(obj);
  }
  return objs;
}

}  // namespace idba
