// Backend-neutral client interfaces.
//
// ClientApi is the surface an interactive application programs against: the
// transactional/query operations of DatabaseClient plus the client-local
// runtime pieces (cache, inbox, virtual clock) that the display layer
// (DLC, ActiveView) needs. Two implementations exist:
//   - DatabaseClient        — direct in-process calls, metered virtual cost
//   - RemoteDatabaseClient  — the same operations over the TCP wire protocol
// Application code written against ClientApi runs unchanged over either.
//
// DisplayLockService is the corresponding abstraction of the Display Lock
// Manager's request surface: in-process the DLC talks straight to the
// DisplayLockManager; remotely, RemoteDatabaseClient forwards the requests
// as wire frames to the server-hosted DLM.

#pragma once

#include <vector>

#include "client/object_cache.h"
#include "common/cost_model.h"
#include "common/status.h"
#include "common/vtime.h"
#include "net/inbox.h"
#include "objectmodel/object.h"
#include "objectmodel/query.h"
#include "objectmodel/schema.h"
#include "server/callback_manager.h"
#include "txn/txn_manager.h"

namespace idba {

/// Client cache consistency family (paper §3.3). Avoidance (the default,
/// and the paper's choice for displays) guarantees cached copies are valid
/// via server callbacks; detection allows stale copies and validates a
/// transaction's optimistic reads at commit, aborting on staleness.
enum class ConsistencyMode { kAvoidance, kDetection };

/// The application-facing database handle, independent of transport.
class ClientApi {
 public:
  virtual ~ClientApi() = default;

  virtual ClientId id() const = 0;
  virtual VirtualClock& clock() = 0;
  virtual Inbox& inbox() = 0;
  virtual ObjectCache& cache() = 0;
  virtual const SchemaCatalog& schema() const = 0;
  virtual const CostModel& cost_model() const = 0;
  virtual ConsistencyMode consistency() const = 0;

  // --- Schema administration (setup phase; DDL travels with the client
  // connection, like any client-server DBMS) ----------------------------
  virtual Result<ClassId> DefineClass(const std::string& name,
                                      ClassId base = 0) = 0;
  virtual Status AddAttribute(ClassId cls, const std::string& name,
                              ValueType type, Value default_value = Value()) = 0;

  // --- Transactions ----------------------------------------------------
  /// Starts a transaction. Fallible: over a remote backend the begin is an
  /// RPC that can time out or lose its connection.
  virtual Result<TxnId> BeginTxn() = 0;
  /// Convenience wrapper for call sites that treat begin as infallible
  /// (in-process it is). Returns 0 — never a valid TxnId — on transport
  /// failure; prefer BeginTxn() anywhere the error must propagate.
  TxnId Begin() {
    Result<TxnId> txn = BeginTxn();
    return txn.ok() ? txn.value() : 0;
  }
  virtual Result<DatabaseObject> Read(TxnId txn, Oid oid) = 0;
  virtual Result<DatabaseObject> ReadCurrent(Oid oid) = 0;
  virtual Status Write(TxnId txn, DatabaseObject obj) = 0;
  virtual Status Insert(TxnId txn, DatabaseObject obj) = 0;
  virtual Status EraseObject(TxnId txn, Oid oid) = 0;
  virtual Result<CommitResult> Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;

  // --- Bulk reads -------------------------------------------------------
  virtual Result<std::vector<DatabaseObject>> ScanClass(
      ClassId cls, bool include_subclasses = false) = 0;
  virtual Result<std::vector<DatabaseObject>> RunQuery(
      const ObjectQuery& query) = 0;

  /// Reserves a fresh object id. Fallible for the same reason as
  /// BeginTxn().
  virtual Result<Oid> NewOid() = 0;
  /// Convenience wrapper; returns the null Oid on transport failure.
  Oid AllocateOid() {
    Result<Oid> oid = NewOid();
    return oid.ok() ? oid.value() : Oid();
  }

  /// Latest committed version of `oid` (introspection used by staleness
  /// accounting; not metered, not transactional).
  virtual Result<uint64_t> LatestVersion(Oid oid) = 0;

  virtual uint64_t rpcs_issued() const = 0;
  /// Validation aborts suffered (detection mode only).
  virtual uint64_t validation_aborts() const = 0;
  /// Retry-after hint (ms) from the most recent Status::Overloaded
  /// rejection this client received; 0 when none. Retry loops
  /// (RunTransaction) use it as a backoff floor. In-process backends never
  /// shed, so the default stays 0.
  virtual int64_t retry_after_hint_ms() const { return 0; }
};

/// The DLM request surface as seen from a client (paper §4.1: lock/unlock
/// messages; batches are the one-message-per-view optimization).
class DisplayLockService {
 public:
  virtual ~DisplayLockService() = default;
  virtual Status Lock(ClientId holder, Oid oid, VTime sent_at) = 0;
  virtual Status Unlock(ClientId holder, Oid oid, VTime sent_at) = 0;
  virtual Status LockBatch(ClientId holder, const std::vector<Oid>& oids,
                           VTime sent_at) = 0;
  virtual Status UnlockBatch(ClientId holder, const std::vector<Oid>& oids,
                             VTime sent_at) = 0;
};

}  // namespace idba
