# Empty dependencies file for nms_repl.
# This may be replaced when dependencies are built.
