file(REMOVE_RECURSE
  "CMakeFiles/nms_repl.dir/nms_repl.cpp.o"
  "CMakeFiles/nms_repl.dir/nms_repl.cpp.o.d"
  "nms_repl"
  "nms_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nms_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
