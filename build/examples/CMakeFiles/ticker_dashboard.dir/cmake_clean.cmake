file(REMOVE_RECURSE
  "CMakeFiles/ticker_dashboard.dir/ticker_dashboard.cpp.o"
  "CMakeFiles/ticker_dashboard.dir/ticker_dashboard.cpp.o.d"
  "ticker_dashboard"
  "ticker_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticker_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
