# Empty compiler generated dependencies file for ticker_dashboard.
# This may be replaced when dependencies are built.
