# Empty dependencies file for nms_console.
# This may be replaced when dependencies are built.
