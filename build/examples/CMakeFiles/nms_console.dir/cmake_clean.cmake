file(REMOVE_RECURSE
  "CMakeFiles/nms_console.dir/nms_console.cpp.o"
  "CMakeFiles/nms_console.dir/nms_console.cpp.o.d"
  "nms_console"
  "nms_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nms_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
