file(REMOVE_RECURSE
  "CMakeFiles/collab_edit.dir/collab_edit.cpp.o"
  "CMakeFiles/collab_edit.dir/collab_edit.cpp.o.d"
  "collab_edit"
  "collab_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
