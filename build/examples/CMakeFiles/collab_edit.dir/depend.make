# Empty dependencies file for collab_edit.
# This may be replaced when dependencies are built.
