file(REMOVE_RECURSE
  "CMakeFiles/treemap_explorer.dir/treemap_explorer.cpp.o"
  "CMakeFiles/treemap_explorer.dir/treemap_explorer.cpp.o.d"
  "treemap_explorer"
  "treemap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treemap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
