# Empty dependencies file for treemap_explorer.
# This may be replaced when dependencies are built.
