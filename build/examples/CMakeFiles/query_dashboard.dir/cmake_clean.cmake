file(REMOVE_RECURSE
  "CMakeFiles/query_dashboard.dir/query_dashboard.cpp.o"
  "CMakeFiles/query_dashboard.dir/query_dashboard.cpp.o.d"
  "query_dashboard"
  "query_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
