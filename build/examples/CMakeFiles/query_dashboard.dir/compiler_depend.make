# Empty compiler generated dependencies file for query_dashboard.
# This may be replaced when dependencies are built.
