# Empty dependencies file for exp_ablation_eras.
# This may be replaced when dependencies are built.
