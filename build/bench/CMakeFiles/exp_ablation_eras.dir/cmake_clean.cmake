file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_eras.dir/exp_ablation_eras.cc.o"
  "CMakeFiles/exp_ablation_eras.dir/exp_ablation_eras.cc.o.d"
  "exp_ablation_eras"
  "exp_ablation_eras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_eras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
