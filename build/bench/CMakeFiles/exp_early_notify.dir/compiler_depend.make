# Empty compiler generated dependencies file for exp_early_notify.
# This may be replaced when dependencies are built.
