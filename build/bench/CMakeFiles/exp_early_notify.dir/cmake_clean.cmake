file(REMOVE_RECURSE
  "CMakeFiles/exp_early_notify.dir/exp_early_notify.cc.o"
  "CMakeFiles/exp_early_notify.dir/exp_early_notify.cc.o.d"
  "exp_early_notify"
  "exp_early_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_early_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
