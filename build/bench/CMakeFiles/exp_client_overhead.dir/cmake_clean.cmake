file(REMOVE_RECURSE
  "CMakeFiles/exp_client_overhead.dir/exp_client_overhead.cc.o"
  "CMakeFiles/exp_client_overhead.dir/exp_client_overhead.cc.o.d"
  "exp_client_overhead"
  "exp_client_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_client_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
