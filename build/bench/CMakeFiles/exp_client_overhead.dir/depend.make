# Empty dependencies file for exp_client_overhead.
# This may be replaced when dependencies are built.
