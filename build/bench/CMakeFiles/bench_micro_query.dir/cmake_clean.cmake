file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_query.dir/bench_micro_query.cc.o"
  "CMakeFiles/bench_micro_query.dir/bench_micro_query.cc.o.d"
  "bench_micro_query"
  "bench_micro_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
