file(REMOVE_RECURSE
  "CMakeFiles/exp_propagation.dir/exp_propagation.cc.o"
  "CMakeFiles/exp_propagation.dir/exp_propagation.cc.o.d"
  "exp_propagation"
  "exp_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
