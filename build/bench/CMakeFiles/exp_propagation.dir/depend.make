# Empty dependencies file for exp_propagation.
# This may be replaced when dependencies are built.
