file(REMOVE_RECURSE
  "CMakeFiles/exp_scalability.dir/exp_scalability.cc.o"
  "CMakeFiles/exp_scalability.dir/exp_scalability.cc.o.d"
  "exp_scalability"
  "exp_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
