# Empty dependencies file for exp_scalability.
# This may be replaced when dependencies are built.
