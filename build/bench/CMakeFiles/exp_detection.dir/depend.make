# Empty dependencies file for exp_detection.
# This may be replaced when dependencies are built.
