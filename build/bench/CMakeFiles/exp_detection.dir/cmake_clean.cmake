file(REMOVE_RECURSE
  "CMakeFiles/exp_detection.dir/exp_detection.cc.o"
  "CMakeFiles/exp_detection.dir/exp_detection.cc.o.d"
  "exp_detection"
  "exp_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
