# Empty compiler generated dependencies file for exp_dlc_filtering.
# This may be replaced when dependencies are built.
