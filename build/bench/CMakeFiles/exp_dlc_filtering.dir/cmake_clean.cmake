file(REMOVE_RECURSE
  "CMakeFiles/exp_dlc_filtering.dir/exp_dlc_filtering.cc.o"
  "CMakeFiles/exp_dlc_filtering.dir/exp_dlc_filtering.cc.o.d"
  "exp_dlc_filtering"
  "exp_dlc_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_dlc_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
