# Empty dependencies file for exp_refresh_vs_notify.
# This may be replaced when dependencies are built.
