# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_refresh_vs_notify.
