file(REMOVE_RECURSE
  "CMakeFiles/exp_refresh_vs_notify.dir/exp_refresh_vs_notify.cc.o"
  "CMakeFiles/exp_refresh_vs_notify.dir/exp_refresh_vs_notify.cc.o.d"
  "exp_refresh_vs_notify"
  "exp_refresh_vs_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_refresh_vs_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
