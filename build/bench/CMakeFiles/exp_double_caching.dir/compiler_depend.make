# Empty compiler generated dependencies file for exp_double_caching.
# This may be replaced when dependencies are built.
