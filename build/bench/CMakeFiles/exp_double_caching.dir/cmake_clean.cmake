file(REMOVE_RECURSE
  "CMakeFiles/exp_double_caching.dir/exp_double_caching.cc.o"
  "CMakeFiles/exp_double_caching.dir/exp_double_caching.cc.o.d"
  "exp_double_caching"
  "exp_double_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_double_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
