# Empty dependencies file for bench_micro_viz.
# This may be replaced when dependencies are built.
