file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_viz.dir/bench_micro_viz.cc.o"
  "CMakeFiles/bench_micro_viz.dir/bench_micro_viz.cc.o.d"
  "bench_micro_viz"
  "bench_micro_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
