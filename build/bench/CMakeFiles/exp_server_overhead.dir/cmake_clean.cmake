file(REMOVE_RECURSE
  "CMakeFiles/exp_server_overhead.dir/exp_server_overhead.cc.o"
  "CMakeFiles/exp_server_overhead.dir/exp_server_overhead.cc.o.d"
  "exp_server_overhead"
  "exp_server_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_server_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
