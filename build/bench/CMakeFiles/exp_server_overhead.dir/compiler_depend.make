# Empty compiler generated dependencies file for exp_server_overhead.
# This may be replaced when dependencies are built.
