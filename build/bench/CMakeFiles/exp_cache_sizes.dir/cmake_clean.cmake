file(REMOVE_RECURSE
  "CMakeFiles/exp_cache_sizes.dir/exp_cache_sizes.cc.o"
  "CMakeFiles/exp_cache_sizes.dir/exp_cache_sizes.cc.o.d"
  "exp_cache_sizes"
  "exp_cache_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cache_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
