# Empty dependencies file for exp_cache_sizes.
# This may be replaced when dependencies are built.
