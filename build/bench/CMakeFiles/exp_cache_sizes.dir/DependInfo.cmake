
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_cache_sizes.cc" "bench/CMakeFiles/exp_cache_sizes.dir/exp_cache_sizes.cc.o" "gcc" "bench/CMakeFiles/exp_cache_sizes.dir/exp_cache_sizes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nms/CMakeFiles/idba_nms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/idba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/idba_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/idba_server.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/idba_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idba_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/objectmodel/CMakeFiles/idba_objectmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/idba_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
