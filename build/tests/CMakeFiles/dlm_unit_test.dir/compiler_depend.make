# Empty compiler generated dependencies file for dlm_unit_test.
# This may be replaced when dependencies are built.
