file(REMOVE_RECURSE
  "CMakeFiles/dlm_unit_test.dir/dlm_unit_test.cc.o"
  "CMakeFiles/dlm_unit_test.dir/dlm_unit_test.cc.o.d"
  "dlm_unit_test"
  "dlm_unit_test.pdb"
  "dlm_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
