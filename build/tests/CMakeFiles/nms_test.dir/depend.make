# Empty dependencies file for nms_test.
# This may be replaced when dependencies are built.
