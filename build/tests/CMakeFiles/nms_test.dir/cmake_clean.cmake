file(REMOVE_RECURSE
  "CMakeFiles/nms_test.dir/nms_test.cc.o"
  "CMakeFiles/nms_test.dir/nms_test.cc.o.d"
  "nms_test"
  "nms_test.pdb"
  "nms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
