file(REMOVE_RECURSE
  "CMakeFiles/heap_store_test.dir/heap_store_test.cc.o"
  "CMakeFiles/heap_store_test.dir/heap_store_test.cc.o.d"
  "heap_store_test"
  "heap_store_test.pdb"
  "heap_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
