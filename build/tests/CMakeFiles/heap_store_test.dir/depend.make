# Empty dependencies file for heap_store_test.
# This may be replaced when dependencies are built.
