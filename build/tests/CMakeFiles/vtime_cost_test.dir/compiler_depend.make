# Empty compiler generated dependencies file for vtime_cost_test.
# This may be replaced when dependencies are built.
