file(REMOVE_RECURSE
  "CMakeFiles/vtime_cost_test.dir/vtime_cost_test.cc.o"
  "CMakeFiles/vtime_cost_test.dir/vtime_cost_test.cc.o.d"
  "vtime_cost_test"
  "vtime_cost_test.pdb"
  "vtime_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtime_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
