# Empty dependencies file for detection_mode_test.
# This may be replaced when dependencies are built.
