file(REMOVE_RECURSE
  "CMakeFiles/detection_mode_test.dir/detection_mode_test.cc.o"
  "CMakeFiles/detection_mode_test.dir/detection_mode_test.cc.o.d"
  "detection_mode_test"
  "detection_mode_test.pdb"
  "detection_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
