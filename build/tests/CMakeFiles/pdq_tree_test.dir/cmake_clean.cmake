file(REMOVE_RECURSE
  "CMakeFiles/pdq_tree_test.dir/pdq_tree_test.cc.o"
  "CMakeFiles/pdq_tree_test.dir/pdq_tree_test.cc.o.d"
  "pdq_tree_test"
  "pdq_tree_test.pdb"
  "pdq_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdq_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
