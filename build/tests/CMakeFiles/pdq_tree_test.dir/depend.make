# Empty dependencies file for pdq_tree_test.
# This may be replaced when dependencies are built.
