file(REMOVE_RECURSE
  "CMakeFiles/snapshot_batch_test.dir/snapshot_batch_test.cc.o"
  "CMakeFiles/snapshot_batch_test.dir/snapshot_batch_test.cc.o.d"
  "snapshot_batch_test"
  "snapshot_batch_test.pdb"
  "snapshot_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
