# Empty dependencies file for dlm_dlc_test.
# This may be replaced when dependencies are built.
