file(REMOVE_RECURSE
  "CMakeFiles/dlm_dlc_test.dir/dlm_dlc_test.cc.o"
  "CMakeFiles/dlm_dlc_test.dir/dlm_dlc_test.cc.o.d"
  "dlm_dlc_test"
  "dlm_dlc_test.pdb"
  "dlm_dlc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlm_dlc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
