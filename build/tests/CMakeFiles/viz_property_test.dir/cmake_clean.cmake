file(REMOVE_RECURSE
  "CMakeFiles/viz_property_test.dir/viz_property_test.cc.o"
  "CMakeFiles/viz_property_test.dir/viz_property_test.cc.o.d"
  "viz_property_test"
  "viz_property_test.pdb"
  "viz_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
