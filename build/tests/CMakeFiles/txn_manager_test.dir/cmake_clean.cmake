file(REMOVE_RECURSE
  "CMakeFiles/txn_manager_test.dir/txn_manager_test.cc.o"
  "CMakeFiles/txn_manager_test.dir/txn_manager_test.cc.o.d"
  "txn_manager_test"
  "txn_manager_test.pdb"
  "txn_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
