file(REMOVE_RECURSE
  "CMakeFiles/display_cache_test.dir/display_cache_test.cc.o"
  "CMakeFiles/display_cache_test.dir/display_cache_test.cc.o.d"
  "display_cache_test"
  "display_cache_test.pdb"
  "display_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
