# Empty dependencies file for lock_fairness_test.
# This may be replaced when dependencies are built.
