file(REMOVE_RECURSE
  "CMakeFiles/lock_fairness_test.dir/lock_fairness_test.cc.o"
  "CMakeFiles/lock_fairness_test.dir/lock_fairness_test.cc.o.d"
  "lock_fairness_test"
  "lock_fairness_test.pdb"
  "lock_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
