file(REMOVE_RECURSE
  "CMakeFiles/active_view_test.dir/active_view_test.cc.o"
  "CMakeFiles/active_view_test.dir/active_view_test.cc.o.d"
  "active_view_test"
  "active_view_test.pdb"
  "active_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
