# Empty dependencies file for active_view_test.
# This may be replaced when dependencies are built.
