file(REMOVE_RECURSE
  "CMakeFiles/treemap_test.dir/treemap_test.cc.o"
  "CMakeFiles/treemap_test.dir/treemap_test.cc.o.d"
  "treemap_test"
  "treemap_test.pdb"
  "treemap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
