file(REMOVE_RECURSE
  "CMakeFiles/display_schema_test.dir/display_schema_test.cc.o"
  "CMakeFiles/display_schema_test.dir/display_schema_test.cc.o.d"
  "display_schema_test"
  "display_schema_test.pdb"
  "display_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
