# Empty dependencies file for txn_retry_test.
# This may be replaced when dependencies are built.
