file(REMOVE_RECURSE
  "CMakeFiles/txn_retry_test.dir/txn_retry_test.cc.o"
  "CMakeFiles/txn_retry_test.dir/txn_retry_test.cc.o.d"
  "txn_retry_test"
  "txn_retry_test.pdb"
  "txn_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
