file(REMOVE_RECURSE
  "CMakeFiles/callback_manager_test.dir/callback_manager_test.cc.o"
  "CMakeFiles/callback_manager_test.dir/callback_manager_test.cc.o.d"
  "callback_manager_test"
  "callback_manager_test.pdb"
  "callback_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callback_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
