# Empty compiler generated dependencies file for server_api_test.
# This may be replaced when dependencies are built.
