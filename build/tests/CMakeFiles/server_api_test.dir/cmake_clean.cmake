file(REMOVE_RECURSE
  "CMakeFiles/server_api_test.dir/server_api_test.cc.o"
  "CMakeFiles/server_api_test.dir/server_api_test.cc.o.d"
  "server_api_test"
  "server_api_test.pdb"
  "server_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
