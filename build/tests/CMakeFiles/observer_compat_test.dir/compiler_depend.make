# Empty compiler generated dependencies file for observer_compat_test.
# This may be replaced when dependencies are built.
