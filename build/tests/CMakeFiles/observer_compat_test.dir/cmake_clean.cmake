file(REMOVE_RECURSE
  "CMakeFiles/observer_compat_test.dir/observer_compat_test.cc.o"
  "CMakeFiles/observer_compat_test.dir/observer_compat_test.cc.o.d"
  "observer_compat_test"
  "observer_compat_test.pdb"
  "observer_compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observer_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
