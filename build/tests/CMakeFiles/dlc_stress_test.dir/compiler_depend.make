# Empty compiler generated dependencies file for dlc_stress_test.
# This may be replaced when dependencies are built.
