file(REMOVE_RECURSE
  "CMakeFiles/dlc_stress_test.dir/dlc_stress_test.cc.o"
  "CMakeFiles/dlc_stress_test.dir/dlc_stress_test.cc.o.d"
  "dlc_stress_test"
  "dlc_stress_test.pdb"
  "dlc_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlc_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
