# Empty dependencies file for display_object_test.
# This may be replaced when dependencies are built.
