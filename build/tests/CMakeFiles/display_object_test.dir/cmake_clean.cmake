file(REMOVE_RECURSE
  "CMakeFiles/display_object_test.dir/display_object_test.cc.o"
  "CMakeFiles/display_object_test.dir/display_object_test.cc.o.d"
  "display_object_test"
  "display_object_test.pdb"
  "display_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
