
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_view.cc" "src/core/CMakeFiles/idba_core.dir/active_view.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/active_view.cc.o.d"
  "/root/repo/src/core/display_cache.cc" "src/core/CMakeFiles/idba_core.dir/display_cache.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/display_cache.cc.o.d"
  "/root/repo/src/core/display_object.cc" "src/core/CMakeFiles/idba_core.dir/display_object.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/display_object.cc.o.d"
  "/root/repo/src/core/display_schema.cc" "src/core/CMakeFiles/idba_core.dir/display_schema.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/display_schema.cc.o.d"
  "/root/repo/src/core/dlc.cc" "src/core/CMakeFiles/idba_core.dir/dlc.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/dlc.cc.o.d"
  "/root/repo/src/core/dlm.cc" "src/core/CMakeFiles/idba_core.dir/dlm.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/dlm.cc.o.d"
  "/root/repo/src/core/notification.cc" "src/core/CMakeFiles/idba_core.dir/notification.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/notification.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/idba_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/session.cc.o.d"
  "/root/repo/src/core/stats_report.cc" "src/core/CMakeFiles/idba_core.dir/stats_report.cc.o" "gcc" "src/core/CMakeFiles/idba_core.dir/stats_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/idba_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/idba_server.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/idba_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idba_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/objectmodel/CMakeFiles/idba_objectmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
