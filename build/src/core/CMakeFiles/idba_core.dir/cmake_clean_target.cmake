file(REMOVE_RECURSE
  "libidba_core.a"
)
