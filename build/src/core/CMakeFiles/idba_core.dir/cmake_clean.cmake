file(REMOVE_RECURSE
  "CMakeFiles/idba_core.dir/active_view.cc.o"
  "CMakeFiles/idba_core.dir/active_view.cc.o.d"
  "CMakeFiles/idba_core.dir/display_cache.cc.o"
  "CMakeFiles/idba_core.dir/display_cache.cc.o.d"
  "CMakeFiles/idba_core.dir/display_object.cc.o"
  "CMakeFiles/idba_core.dir/display_object.cc.o.d"
  "CMakeFiles/idba_core.dir/display_schema.cc.o"
  "CMakeFiles/idba_core.dir/display_schema.cc.o.d"
  "CMakeFiles/idba_core.dir/dlc.cc.o"
  "CMakeFiles/idba_core.dir/dlc.cc.o.d"
  "CMakeFiles/idba_core.dir/dlm.cc.o"
  "CMakeFiles/idba_core.dir/dlm.cc.o.d"
  "CMakeFiles/idba_core.dir/notification.cc.o"
  "CMakeFiles/idba_core.dir/notification.cc.o.d"
  "CMakeFiles/idba_core.dir/session.cc.o"
  "CMakeFiles/idba_core.dir/session.cc.o.d"
  "CMakeFiles/idba_core.dir/stats_report.cc.o"
  "CMakeFiles/idba_core.dir/stats_report.cc.o.d"
  "libidba_core.a"
  "libidba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
