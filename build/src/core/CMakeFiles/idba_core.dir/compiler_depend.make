# Empty compiler generated dependencies file for idba_core.
# This may be replaced when dependencies are built.
