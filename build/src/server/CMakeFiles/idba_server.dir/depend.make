# Empty dependencies file for idba_server.
# This may be replaced when dependencies are built.
