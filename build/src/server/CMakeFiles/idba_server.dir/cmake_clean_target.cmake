file(REMOVE_RECURSE
  "libidba_server.a"
)
