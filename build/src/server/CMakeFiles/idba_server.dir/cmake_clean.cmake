file(REMOVE_RECURSE
  "CMakeFiles/idba_server.dir/callback_manager.cc.o"
  "CMakeFiles/idba_server.dir/callback_manager.cc.o.d"
  "CMakeFiles/idba_server.dir/database_server.cc.o"
  "CMakeFiles/idba_server.dir/database_server.cc.o.d"
  "CMakeFiles/idba_server.dir/durable.cc.o"
  "CMakeFiles/idba_server.dir/durable.cc.o.d"
  "libidba_server.a"
  "libidba_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
