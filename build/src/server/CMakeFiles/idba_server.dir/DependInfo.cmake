
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/callback_manager.cc" "src/server/CMakeFiles/idba_server.dir/callback_manager.cc.o" "gcc" "src/server/CMakeFiles/idba_server.dir/callback_manager.cc.o.d"
  "/root/repo/src/server/database_server.cc" "src/server/CMakeFiles/idba_server.dir/database_server.cc.o" "gcc" "src/server/CMakeFiles/idba_server.dir/database_server.cc.o.d"
  "/root/repo/src/server/durable.cc" "src/server/CMakeFiles/idba_server.dir/durable.cc.o" "gcc" "src/server/CMakeFiles/idba_server.dir/durable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/idba_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idba_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/objectmodel/CMakeFiles/idba_objectmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
