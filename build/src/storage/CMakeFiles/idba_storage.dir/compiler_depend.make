# Empty compiler generated dependencies file for idba_storage.
# This may be replaced when dependencies are built.
