
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/idba_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/idba_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/idba_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/idba_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/heap_store.cc" "src/storage/CMakeFiles/idba_storage.dir/heap_store.cc.o" "gcc" "src/storage/CMakeFiles/idba_storage.dir/heap_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/idba_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/idba_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/idba_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/idba_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objectmodel/CMakeFiles/idba_objectmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
