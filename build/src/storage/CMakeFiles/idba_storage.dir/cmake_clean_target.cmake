file(REMOVE_RECURSE
  "libidba_storage.a"
)
