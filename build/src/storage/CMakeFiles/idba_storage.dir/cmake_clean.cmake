file(REMOVE_RECURSE
  "CMakeFiles/idba_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/idba_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/idba_storage.dir/disk.cc.o"
  "CMakeFiles/idba_storage.dir/disk.cc.o.d"
  "CMakeFiles/idba_storage.dir/heap_store.cc.o"
  "CMakeFiles/idba_storage.dir/heap_store.cc.o.d"
  "CMakeFiles/idba_storage.dir/page.cc.o"
  "CMakeFiles/idba_storage.dir/page.cc.o.d"
  "CMakeFiles/idba_storage.dir/wal.cc.o"
  "CMakeFiles/idba_storage.dir/wal.cc.o.d"
  "libidba_storage.a"
  "libidba_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
