file(REMOVE_RECURSE
  "CMakeFiles/idba_objectmodel.dir/object.cc.o"
  "CMakeFiles/idba_objectmodel.dir/object.cc.o.d"
  "CMakeFiles/idba_objectmodel.dir/query.cc.o"
  "CMakeFiles/idba_objectmodel.dir/query.cc.o.d"
  "CMakeFiles/idba_objectmodel.dir/schema.cc.o"
  "CMakeFiles/idba_objectmodel.dir/schema.cc.o.d"
  "CMakeFiles/idba_objectmodel.dir/value.cc.o"
  "CMakeFiles/idba_objectmodel.dir/value.cc.o.d"
  "libidba_objectmodel.a"
  "libidba_objectmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_objectmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
