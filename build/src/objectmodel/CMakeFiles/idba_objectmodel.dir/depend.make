# Empty dependencies file for idba_objectmodel.
# This may be replaced when dependencies are built.
