
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objectmodel/object.cc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/object.cc.o" "gcc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/object.cc.o.d"
  "/root/repo/src/objectmodel/query.cc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/query.cc.o" "gcc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/query.cc.o.d"
  "/root/repo/src/objectmodel/schema.cc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/schema.cc.o" "gcc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/schema.cc.o.d"
  "/root/repo/src/objectmodel/value.cc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/value.cc.o" "gcc" "src/objectmodel/CMakeFiles/idba_objectmodel.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
