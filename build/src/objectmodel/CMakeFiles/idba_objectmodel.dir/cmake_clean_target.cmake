file(REMOVE_RECURSE
  "libidba_objectmodel.a"
)
