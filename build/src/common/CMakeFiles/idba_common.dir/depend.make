# Empty dependencies file for idba_common.
# This may be replaced when dependencies are built.
