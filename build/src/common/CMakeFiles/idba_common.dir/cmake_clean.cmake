file(REMOVE_RECURSE
  "CMakeFiles/idba_common.dir/logging.cc.o"
  "CMakeFiles/idba_common.dir/logging.cc.o.d"
  "CMakeFiles/idba_common.dir/metrics.cc.o"
  "CMakeFiles/idba_common.dir/metrics.cc.o.d"
  "CMakeFiles/idba_common.dir/status.cc.o"
  "CMakeFiles/idba_common.dir/status.cc.o.d"
  "libidba_common.a"
  "libidba_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
