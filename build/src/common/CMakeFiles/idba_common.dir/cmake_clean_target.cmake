file(REMOVE_RECURSE
  "libidba_common.a"
)
