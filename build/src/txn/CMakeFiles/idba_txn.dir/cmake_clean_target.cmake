file(REMOVE_RECURSE
  "libidba_txn.a"
)
