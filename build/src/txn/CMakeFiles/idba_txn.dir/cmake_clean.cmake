file(REMOVE_RECURSE
  "CMakeFiles/idba_txn.dir/lock_manager.cc.o"
  "CMakeFiles/idba_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/idba_txn.dir/recovery.cc.o"
  "CMakeFiles/idba_txn.dir/recovery.cc.o.d"
  "CMakeFiles/idba_txn.dir/txn_manager.cc.o"
  "CMakeFiles/idba_txn.dir/txn_manager.cc.o.d"
  "libidba_txn.a"
  "libidba_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
