# Empty compiler generated dependencies file for idba_txn.
# This may be replaced when dependencies are built.
