file(REMOVE_RECURSE
  "CMakeFiles/idba_viz.dir/ascii_canvas.cc.o"
  "CMakeFiles/idba_viz.dir/ascii_canvas.cc.o.d"
  "CMakeFiles/idba_viz.dir/color.cc.o"
  "CMakeFiles/idba_viz.dir/color.cc.o.d"
  "CMakeFiles/idba_viz.dir/graph_layout.cc.o"
  "CMakeFiles/idba_viz.dir/graph_layout.cc.o.d"
  "CMakeFiles/idba_viz.dir/pdq_tree.cc.o"
  "CMakeFiles/idba_viz.dir/pdq_tree.cc.o.d"
  "CMakeFiles/idba_viz.dir/treemap.cc.o"
  "CMakeFiles/idba_viz.dir/treemap.cc.o.d"
  "libidba_viz.a"
  "libidba_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
