file(REMOVE_RECURSE
  "libidba_viz.a"
)
