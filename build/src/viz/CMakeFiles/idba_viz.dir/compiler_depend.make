# Empty compiler generated dependencies file for idba_viz.
# This may be replaced when dependencies are built.
