
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/ascii_canvas.cc" "src/viz/CMakeFiles/idba_viz.dir/ascii_canvas.cc.o" "gcc" "src/viz/CMakeFiles/idba_viz.dir/ascii_canvas.cc.o.d"
  "/root/repo/src/viz/color.cc" "src/viz/CMakeFiles/idba_viz.dir/color.cc.o" "gcc" "src/viz/CMakeFiles/idba_viz.dir/color.cc.o.d"
  "/root/repo/src/viz/graph_layout.cc" "src/viz/CMakeFiles/idba_viz.dir/graph_layout.cc.o" "gcc" "src/viz/CMakeFiles/idba_viz.dir/graph_layout.cc.o.d"
  "/root/repo/src/viz/pdq_tree.cc" "src/viz/CMakeFiles/idba_viz.dir/pdq_tree.cc.o" "gcc" "src/viz/CMakeFiles/idba_viz.dir/pdq_tree.cc.o.d"
  "/root/repo/src/viz/treemap.cc" "src/viz/CMakeFiles/idba_viz.dir/treemap.cc.o" "gcc" "src/viz/CMakeFiles/idba_viz.dir/treemap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
