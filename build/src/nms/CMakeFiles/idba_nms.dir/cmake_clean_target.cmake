file(REMOVE_RECURSE
  "libidba_nms.a"
)
