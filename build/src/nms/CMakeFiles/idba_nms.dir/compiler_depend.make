# Empty compiler generated dependencies file for idba_nms.
# This may be replaced when dependencies are built.
