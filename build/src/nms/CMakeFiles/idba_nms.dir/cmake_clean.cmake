file(REMOVE_RECURSE
  "CMakeFiles/idba_nms.dir/display_classes.cc.o"
  "CMakeFiles/idba_nms.dir/display_classes.cc.o.d"
  "CMakeFiles/idba_nms.dir/monitor.cc.o"
  "CMakeFiles/idba_nms.dir/monitor.cc.o.d"
  "CMakeFiles/idba_nms.dir/network_model.cc.o"
  "CMakeFiles/idba_nms.dir/network_model.cc.o.d"
  "CMakeFiles/idba_nms.dir/operators.cc.o"
  "CMakeFiles/idba_nms.dir/operators.cc.o.d"
  "CMakeFiles/idba_nms.dir/paths.cc.o"
  "CMakeFiles/idba_nms.dir/paths.cc.o.d"
  "CMakeFiles/idba_nms.dir/workload.cc.o"
  "CMakeFiles/idba_nms.dir/workload.cc.o.d"
  "libidba_nms.a"
  "libidba_nms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_nms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
