file(REMOVE_RECURSE
  "CMakeFiles/idba_client.dir/database_client.cc.o"
  "CMakeFiles/idba_client.dir/database_client.cc.o.d"
  "CMakeFiles/idba_client.dir/object_cache.cc.o"
  "CMakeFiles/idba_client.dir/object_cache.cc.o.d"
  "libidba_client.a"
  "libidba_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idba_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
