file(REMOVE_RECURSE
  "libidba_client.a"
)
