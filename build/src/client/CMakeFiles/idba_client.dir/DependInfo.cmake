
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/database_client.cc" "src/client/CMakeFiles/idba_client.dir/database_client.cc.o" "gcc" "src/client/CMakeFiles/idba_client.dir/database_client.cc.o.d"
  "/root/repo/src/client/object_cache.cc" "src/client/CMakeFiles/idba_client.dir/object_cache.cc.o" "gcc" "src/client/CMakeFiles/idba_client.dir/object_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/idba_server.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/idba_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/idba_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/objectmodel/CMakeFiles/idba_objectmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/idba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
