# Empty compiler generated dependencies file for idba_client.
# This may be replaced when dependencies are built.
