#include "core/display_cache.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

class DisplayCacheTest : public ::testing::Test {
 protected:
  DisplayCacheTest() {
    link_ = catalog_.DefineClass("Link").value();
    EXPECT_TRUE(
        catalog_.AddAttribute(link_, "Utilization", ValueType::kDouble).ok());
    DisplayClassDef def("LinkLine", link_);
    def.Project("Utilization", "Utilization").Gui("X", Value(0.0));
    dc_ = schema_.Define(std::move(def), catalog_).value();
  }
  SchemaCatalog catalog_;
  DisplaySchema schema_;
  ClassId link_;
  DisplayClassId dc_;
};

TEST_F(DisplayCacheTest, CreateFindRemove) {
  DisplayCache cache;
  auto dob = cache.Create(schema_.Find(dc_), {Oid(1)});
  ASSERT_TRUE(dob.ok());
  DoId id = dob.value()->id();
  EXPECT_EQ(cache.Find(id), dob.value());
  EXPECT_EQ(cache.object_count(), 1u);
  EXPECT_GT(cache.bytes_used(), 0u);
  ASSERT_TRUE(cache.Remove(id).ok());
  EXPECT_EQ(cache.Find(id), nullptr);
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.Remove(id).code(), StatusCode::kNotFound);
}

TEST_F(DisplayCacheTest, IdsAreUnique) {
  DisplayCache cache;
  DoId a = cache.Create(schema_.Find(dc_), {Oid(1)}).value()->id();
  DoId b = cache.Create(schema_.Find(dc_), {Oid(1)}).value()->id();
  EXPECT_NE(a, b);
}

TEST_F(DisplayCacheTest, FindBySourceIndexes) {
  DisplayCache cache;
  auto* d1 = cache.Create(schema_.Find(dc_), {Oid(1)}).value();
  auto* d2 = cache.Create(schema_.Find(dc_), {Oid(1), Oid(2)}).value();
  auto* d3 = cache.Create(schema_.Find(dc_), {Oid(3)}).value();
  auto for1 = cache.FindBySource(Oid(1));
  EXPECT_EQ(for1.size(), 2u);
  auto for2 = cache.FindBySource(Oid(2));
  ASSERT_EQ(for2.size(), 1u);
  EXPECT_EQ(for2[0], d2);
  EXPECT_TRUE(cache.FindBySource(Oid(99)).empty());
  (void)d1;
  (void)d3;
}

TEST_F(DisplayCacheTest, RemoveUnindexesSources) {
  DisplayCache cache;
  auto* d = cache.Create(schema_.Find(dc_), {Oid(1)}).value();
  ASSERT_TRUE(cache.Remove(d->id()).ok());
  EXPECT_TRUE(cache.FindBySource(Oid(1)).empty());
}

TEST_F(DisplayCacheTest, BudgetRefusesInsteadOfEvicting) {
  // The defining property (§3.2): the display cache NEVER silently evicts.
  DisplayCache cache(DisplayCacheOptions{.capacity_bytes = 1500});
  std::vector<DoId> created;
  for (;;) {
    auto dob = cache.Create(schema_.Find(dc_), {Oid(created.size() + 1)});
    if (!dob.ok()) {
      EXPECT_TRUE(dob.status().IsBusy());
      break;
    }
    created.push_back(dob.value()->id());
  }
  ASSERT_FALSE(created.empty());
  // Everything created is still there — pinned.
  for (DoId id : created) EXPECT_NE(cache.Find(id), nullptr);
  // Explicit removal (the application's decision) makes room again.
  ASSERT_TRUE(cache.Remove(created[0]).ok());
  EXPECT_TRUE(cache.Create(schema_.Find(dc_), {Oid(1000)}).ok());
}

TEST_F(DisplayCacheTest, UnlimitedByDefault) {
  DisplayCache cache;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cache.Create(schema_.Find(dc_), {Oid(i + 1)}).ok());
  }
  EXPECT_EQ(cache.object_count(), 500u);
}

TEST_F(DisplayCacheTest, ReaccountBytesAfterMutation) {
  DisplayCache cache;
  auto* d = cache.Create(schema_.Find(dc_), {Oid(1)}).value();
  size_t before = cache.bytes_used();
  DatabaseObject img(Oid(1), link_, 1);
  img.Set(0, Value(0.5));
  ASSERT_TRUE(d->Refresh(catalog_, {img}).ok());
  cache.ReaccountBytes();
  EXPECT_GE(cache.bytes_used(), before);  // gained the projected attribute
}

}  // namespace
}  // namespace idba
