#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace idba {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Get(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Get(), 42u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), 80000u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
}

TEST(HistogramTest, PercentilesAreMonotonicAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 0.5);
  double p50 = h.Percentile(0.5);
  double p95 = h.Percentile(0.95);
  double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 7.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  EXPECT_NE(h.Summary().find("count=2"), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  // Threads land on different shards (stripe = thread id), so this
  // exercises the striped merge in Snapshot(): nothing lost, aggregates
  // exact, extrema global across shards.
  Histogram h;
  const int kThreads = 8, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = h.Snapshot();
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(snap.count, n);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(n) * (n + 1) / 2.0);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(HistogramTest, RecordsDuringSnapshotDoNotTearAggregates) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) h.Record(1.0);
  });
  for (int i = 0; i < 200; ++i) {
    auto snap = h.Snapshot();
    // Every observed value is 1.0: any torn read would show up as a
    // sum/count mismatch or impossible extrema.
    EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(snap.count));
    if (snap.count > 0) {
      EXPECT_DOUBLE_EQ(snap.min, 1.0);
      EXPECT_DOUBLE_EQ(snap.max, 1.0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(MetricsRegistryTest, SameNameSameCounter) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(reg.CounterSnapshot()["x"], 3u);
}

TEST(MetricsRegistryTest, DumpAndReset) {
  MetricsRegistry reg;
  reg.GetCounter("commits")->Add(5);
  reg.GetHistogram("latency")->Record(1.5);
  std::string dump = reg.Dump();
  EXPECT_NE(dump.find("commits = 5"), std::string::npos);
  EXPECT_NE(dump.find("latency"), std::string::npos);
  reg.ResetAll();
  EXPECT_EQ(reg.CounterSnapshot()["commits"], 0u);
}

}  // namespace
}  // namespace idba
