#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/monitor.h"
#include "nms/operators.h"

namespace idba {
namespace {

class NmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    config_.num_nodes = 10;
    config_.avg_degree = 3.0;
    config_.sites = 2;
    config_.buildings_per_site = 1;
    config_.racks_per_building = 1;
    config_.devices_per_rack = 2;
    config_.cards_per_device = 1;
    config_.ports_per_card = 2;
    db_ = PopulateNms(&deployment_->server(), config_).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsConfig config_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(NmsTest, PopulationCountsMatchConfig) {
  EXPECT_EQ(db_.node_oids.size(), 10u);
  EXPECT_GE(db_.link_oids.size(), 10u);  // ring at minimum
  EXPECT_EQ(db_.site_oids.size(), 2u);
  // sites*buildings*racks*devices = 2*1*1*2.
  EXPECT_EQ(db_.device_oids.size(), 4u);
  // root + 2 sites + 2 buildings + 2 racks + 4 devices + 4 cards + 8 ports.
  EXPECT_EQ(db_.all_hardware_oids.size(), 23u);
  EXPECT_EQ(deployment_->server().heap().object_count(),
            10 + db_.link_oids.size() + 23);
}

TEST_F(NmsTest, LinksReferenceRealNodes) {
  const SchemaCatalog& cat = deployment_->server().schema();
  for (Oid oid : db_.link_oids) {
    auto link = deployment_->server().heap().Read(oid);
    ASSERT_TRUE(link.ok());
    Oid from = link.value().GetByName(cat, "From").value().AsOid();
    Oid to = link.value().GetByName(cat, "To").value().AsOid();
    EXPECT_TRUE(deployment_->server().heap().Contains(from));
    EXPECT_TRUE(deployment_->server().heap().Contains(to));
    double u = link.value().GetByName(cat, "Utilization").value().AsDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST_F(NmsTest, HardwareHierarchyIsWellFormed) {
  const SchemaCatalog& cat = deployment_->server().schema();
  size_t children_sum = 0;
  for (Oid oid : db_.all_hardware_oids) {
    auto comp = deployment_->server().heap().Read(oid);
    ASSERT_TRUE(comp.ok());
    Oid parent = comp.value().GetByName(cat, "Parent").value().AsOid();
    if (oid != db_.hardware_root) {
      EXPECT_TRUE(deployment_->server().heap().Contains(parent));
    }
    children_sum +=
        comp.value().GetByName(cat, "Children").value().AsOidList().size();
  }
  // Every non-root component is someone's child exactly once.
  EXPECT_EQ(children_sum, db_.all_hardware_oids.size() - 1);
}

TEST_F(NmsTest, WideSchemaMakesDbObjectsMuchBiggerThanDisplayObjects) {
  // The structural root of §4.3's 3-5x cache-size observation.
  auto link = deployment_->server().heap().Read(db_.link_oids[0]).value();
  auto session = deployment_->NewSession(100);
  ActiveView* view = session->CreateView("v");
  auto dob = view->Materialize(
      deployment_->display_schema().Find(dcs_.color_coded_link),
      {db_.link_oids[0]});
  ASSERT_TRUE(dob.ok());
  EXPECT_GT(link.MemoryBytes(), 2 * dob.value()->MemoryBytes());
}

TEST_F(NmsTest, MonitorStepUpdatesUtilization) {
  auto session = deployment_->NewSession(50);
  MonitorOptions opts;
  opts.updates_per_step = 3;
  MonitorProcess monitor(&session->client(), &db_, opts);
  auto touched = monitor.StepOnce();
  ASSERT_TRUE(touched.ok());
  EXPECT_EQ(touched.value().size(), 3u);
  EXPECT_EQ(monitor.updates_committed(), 3u);
  for (Oid oid : touched.value()) {
    auto obj = deployment_->server().heap().Read(oid);
    ASSERT_TRUE(obj.ok());
    EXPECT_GE(obj.value().version(), 2u);  // insert + update
  }
}

TEST_F(NmsTest, MonitorIsDeterministicForSeed) {
  auto s1 = deployment_->NewSession(50);
  auto s2 = deployment_->NewSession(51);
  MonitorProcess m1(&s1->client(), &db_, MonitorOptions{.seed = 9});
  MonitorProcess m2(&s2->client(), &db_, MonitorOptions{.seed = 9});
  auto a = m1.StepOnce();
  auto b = m2.StepOnce();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // same link selection
}

TEST_F(NmsTest, MonitorThreadedModeRuns) {
  auto session = deployment_->NewSession(50);
  MonitorOptions opts;
  opts.interval_ms = 1;
  MonitorProcess monitor(&session->client(), &db_, opts);
  monitor.Start();
  while (monitor.steps() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.Stop();
  EXPECT_GE(monitor.steps(), 5u);
}

TEST_F(NmsTest, OperatorMonitorsAndUpdates) {
  auto op = OperatorSession::Create(deployment_.get(), 100, &db_, &dcs_,
                                    OperatorOptions{.update_probability = 0.5,
                                                    .view_size = 5});
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value()->view()->size(), 5u);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(op.value()->StepOnce().ok());
  }
  EXPECT_GT(op.value()->monitor_actions(), 0u);
  EXPECT_GT(op.value()->updates_committed(), 0u);
}

TEST_F(NmsTest, OperatorSeesMonitorUpdatesOnItsDisplay) {
  auto op = OperatorSession::Create(deployment_.get(), 100, &db_, &dcs_,
                                    OperatorOptions{.update_probability = 0.0})
                .value();
  auto msession = deployment_->NewSession(50);
  MonitorProcess monitor(&msession->client(), &db_,
                         MonitorOptions{.updates_per_step = 5});
  ASSERT_TRUE(monitor.StepOnce().ok());
  ASSERT_TRUE(op->StepOnce().ok());  // pumps notifications first
  EXPECT_GE(op->view()->refreshes(), 1u);
}

TEST_F(NmsTest, RepeatedPopulationReusesSchema) {
  auto db2 = PopulateNms(&deployment_->server(), config_);
  ASSERT_TRUE(db2.ok());
  EXPECT_EQ(db2.value().schema.link, db_.schema.link);
  // No duplicate classes appeared.
  EXPECT_EQ(deployment_->server().schema().class_count(), 9u);
}

}  // namespace
}  // namespace idba
