#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/paths.h"
#include "viz/graph_layout.h"

namespace idba {
namespace {

// --- Graph layout ------------------------------------------------------------

TEST(GraphLayoutTest, AllNodesInsideBounds) {
  std::vector<GraphEdge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  Rect bounds{10, 20, 100, 80};
  auto pos = LayoutGraph(4, edges, bounds);
  ASSERT_TRUE(pos.ok());
  ASSERT_EQ(pos.value().size(), 4u);
  for (const Point& p : pos.value()) {
    EXPECT_GE(p.x, bounds.x);
    EXPECT_LE(p.x, bounds.right());
    EXPECT_GE(p.y, bounds.y);
    EXPECT_LE(p.y, bounds.bottom());
  }
}

TEST(GraphLayoutTest, DeterministicForSeed) {
  std::vector<GraphEdge> edges = {{0, 1}, {1, 2}};
  auto a = LayoutGraph(3, edges, {0, 0, 50, 50}).value();
  auto b = LayoutGraph(3, edges, {0, 0, 50, 50}).value();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(GraphLayoutTest, ForcesSeparateNodes) {
  // A star graph: force-directed refinement must keep leaves apart.
  std::vector<GraphEdge> edges;
  for (size_t i = 1; i < 10; ++i) edges.push_back({0, i});
  auto pos = LayoutGraph(10, edges, {0, 0, 200, 200}).value();
  EXPECT_GT(MinNodeDistance(pos), 5.0);
}

TEST(GraphLayoutTest, ForcesShortenEdgesVsCircle) {
  // Two dense clusters joined by one edge: forces should pull cluster
  // members together, reducing mean edge length vs the initial circle.
  std::vector<GraphEdge> edges;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) edges.push_back({i, j});
  }
  for (size_t i = 5; i < 10; ++i) {
    for (size_t j = i + 1; j < 10; ++j) edges.push_back({i, j});
  }
  edges.push_back({0, 5});
  Rect bounds{0, 0, 300, 300};
  GraphLayoutOptions circle_only;
  circle_only.iterations = 0;
  double circle = MeanEdgeLength(LayoutGraph(10, edges, bounds, circle_only).value(), edges);
  double forces = MeanEdgeLength(LayoutGraph(10, edges, bounds).value(), edges);
  EXPECT_LT(forces, circle);
}

TEST(GraphLayoutTest, InvalidInputsRejected) {
  EXPECT_FALSE(LayoutGraph(2, {{0, 5}}, {0, 0, 10, 10}).ok());
  EXPECT_FALSE(LayoutGraph(2, {}, {0, 0, 0, 10}).ok());
  EXPECT_TRUE(LayoutGraph(0, {}, {0, 0, 10, 10}).ok());
  EXPECT_TRUE(LayoutGraph(1, {}, {0, 0, 10, 10}).ok());
}

// --- Topology index + paths ---------------------------------------------------

class PathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 12;
    config.avg_degree = 2.0;  // ring only: predictable paths
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
    index_ = TopologyIndex::Build(&deployment_->server(), db_).value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
  TopologyIndex index_;
};

TEST_F(PathsTest, IndexCoversTopology) {
  EXPECT_EQ(index_.node_count(), db_.node_oids.size());
  EXPECT_EQ(index_.link_count(), db_.link_oids.size());
  EXPECT_EQ(index_.edges().size(), db_.link_oids.size());
}

TEST_F(PathsTest, RingShortestPathsGoTheShortWay) {
  // Ring of 12: nodes 0 and 3 are 3 hops apart.
  auto path = index_.ShortestPath(db_.node_oids[0], db_.node_oids[3]);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 3u);
  // Opposite side: 6 hops either way.
  auto far = index_.ShortestPath(db_.node_oids[0], db_.node_oids[6]);
  ASSERT_TRUE(far.ok());
  EXPECT_EQ(far.value().size(), 6u);
  // Trivial path.
  auto self = index_.ShortestPath(db_.node_oids[0], db_.node_oids[0]);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self.value().empty());
}

TEST_F(PathsTest, UnknownNodeIsNotFound) {
  EXPECT_EQ(index_.ShortestPath(Oid(999999), db_.node_oids[0]).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PathsTest, IncidentLinksMatchDegree) {
  // In the ring every node has exactly two incident links.
  for (Oid node : db_.node_oids) {
    EXPECT_EQ(index_.IncidentLinks(node).size(), 2u);
  }
}

TEST_F(PathsTest, PathSummaryDisplayObjectOverRealPath) {
  // The paper's §3.1 example, end to end: one display object associated
  // with ALL the link objects of a path, refreshed when any of them moves.
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("paths");
  auto path = index_.ShortestPath(db_.node_oids[0], db_.node_oids[4]).value();
  ASSERT_EQ(path.size(), 4u);
  auto dob = view->Materialize(
      deployment_->display_schema().Find(dcs_.path_summary), path);
  ASSERT_TRUE(dob.ok());
  EXPECT_EQ(dob.value()->Get("HopCount").value(), Value(int64_t(4)));

  // Saturate the middle link; the path line must turn red.
  const SchemaCatalog& cat = deployment_->server().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, path[2]).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(1.0)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->client().Commit(t).ok());
  viewer->PumpOnce();
  EXPECT_EQ(dob.value()->Get("MaxUtilization").value(), Value(1.0));
  EXPECT_EQ(dob.value()->Get("Color").value(), Value("red"));
}

}  // namespace
}  // namespace idba
