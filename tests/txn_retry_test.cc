#include "client/txn_retry.h"

#include "client/database_client.h"

#include <gtest/gtest.h>

#include <thread>

namespace idba {
namespace {

class TxnRetryTest : public ::testing::Test {
 protected:
  TxnRetryTest() {
    cls_ = server_.schema().DefineClass("Item").value();
    EXPECT_TRUE(server_.schema()
                    .AddAttribute(cls_, "Counter", ValueType::kInt, Value(int64_t(0)))
                    .ok());
    a_ = std::make_unique<DatabaseClient>(&server_, 100, &meter_, &bus_);
    DatabaseClientOptions detection;
    detection.consistency = ConsistencyMode::kDetection;
    d_ = std::make_unique<DatabaseClient>(&server_, 102, &meter_, &bus_, detection);
  }

  Oid Seed() {
    TxnId t = a_->Begin();
    Oid oid = a_->AllocateOid();
    DatabaseObject obj(oid, cls_, 1);
    obj.Set(0, Value(int64_t(0)));
    EXPECT_TRUE(a_->Insert(t, std::move(obj)).ok());
    EXPECT_TRUE(a_->Commit(t).ok());
    return oid;
  }

  DatabaseServer server_;
  NotificationBus bus_;
  RpcMeter meter_;
  ClassId cls_;
  std::unique_ptr<DatabaseClient> a_, d_;
};

TEST_F(TxnRetryTest, SucceedsFirstTry) {
  Oid oid = Seed();
  auto result = RunTransaction(a_.get(), [&](ClientApi& c, TxnId t) {
    IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, c.Read(t, oid));
    obj.Set(0, Value(int64_t(7)));
    return c.Write(t, std::move(obj));
  });
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 1);
  ASSERT_EQ(result.commit.updated.size(), 1u);
  EXPECT_EQ(server_.heap().Read(oid).value().Get(0), Value(int64_t(7)));
}

TEST_F(TxnRetryTest, NonRetryableErrorReturnsImmediately) {
  auto result = RunTransaction(a_.get(), [&](ClientApi& c, TxnId t) {
    return c.Read(t, Oid(424242)).status();  // NotFound
  });
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.attempts, 1);
}

TEST_F(TxnRetryTest, RetriesDetectionValidationAborts) {
  Oid oid = Seed();
  // Pre-warm the detection client's cache with a soon-to-be-stale copy.
  {
    TxnId t = d_->Begin();
    ASSERT_TRUE(d_->Read(t, oid).ok());
    ASSERT_TRUE(d_->Abort(t).ok());
  }
  // Another client bumps the version.
  {
    TxnId t = a_->Begin();
    DatabaseObject obj = a_->Read(t, oid).value();
    obj.Set(0, Value(int64_t(1)));
    ASSERT_TRUE(a_->Write(t, std::move(obj)).ok());
    ASSERT_TRUE(a_->Commit(t).ok());
  }
  // Retry loop: first attempt validates stale and aborts, second succeeds.
  auto result = RunTransaction(d_.get(), [&](ClientApi& c, TxnId t) {
    IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, c.Read(t, oid));
    obj.Set(0, Value(obj.Get(0).AsInt() + 10));
    return c.Write(t, std::move(obj));
  });
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(server_.heap().Read(oid).value().Get(0), Value(int64_t(11)));
}

TEST_F(TxnRetryTest, GivesUpAfterMaxAttempts) {
  int calls = 0;
  auto result = RunTransaction(
      a_.get(),
      [&](ClientApi&, TxnId) {
        ++calls;
        return Status::Busy("always");
      },
      TxnRetryOptions{.max_attempts = 3});
  EXPECT_TRUE(result.status.IsBusy());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST_F(TxnRetryTest, ConcurrentIncrementsAllLand) {
  Oid oid = Seed();
  auto b = std::make_unique<DatabaseClient>(&server_, 101, &meter_, &bus_);
  auto increment = [&](DatabaseClient* client) {
    for (int i = 0; i < 25; ++i) {
      auto result = RunTransaction(client, [&](ClientApi& c, TxnId t) {
        IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, c.Read(t, oid));
        obj.Set(0, Value(obj.Get(0).AsInt() + 1));
        return c.Write(t, std::move(obj));
      });
      ASSERT_TRUE(result.status.ok());
    }
  };
  std::thread t1([&] { increment(a_.get()); });
  std::thread t2([&] { increment(b.get()); });
  t1.join();
  t2.join();
  EXPECT_EQ(server_.heap().Read(oid).value().Get(0), Value(int64_t(50)));
}

}  // namespace
}  // namespace idba
