// PromHttpServer tests: basic scrape correctness, 404/405 handling,
// concurrent scrapers (served on detached handler threads), a malformed
// request line, and a slow reader that must neither wedge the acceptor nor
// block Stop() forever.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/prom_http.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One HTTP exchange: send `request` verbatim, read until EOF.
std::string Exchange(uint16_t port, const std::string& request) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

TEST(PromHttpTest, ServesMetricsAndRejectsOthers) {
  MetricsRegistry reg;
  reg.GetCounter("unit.scrape_me")->Add(42);
  obs::PromHttpServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string ok =
      Exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("idba_unit_scrape_me_total 42"), std::string::npos);

  const std::string missing =
      Exchange(server.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post =
      Exchange(server.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  EXPECT_EQ(server.scrapes_served(), 1u);
  server.Stop();
}

TEST(PromHttpTest, ConcurrentScrapesAllSucceed) {
  MetricsRegistry reg;
  reg.GetCounter("unit.concurrent")->Add(7);
  obs::PromHttpServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string resp =
            Exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
        if (resp.find("200 OK") != std::string::npos &&
            resp.find("idba_unit_concurrent_total 7") != std::string::npos) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(server.scrapes_served(),
            static_cast<uint64_t>(kThreads * kPerThread));
  server.Stop();
}

TEST(PromHttpTest, MalformedRequestLineClosesCleanly) {
  MetricsRegistry reg;
  obs::PromHttpServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());

  // No parseable METHOD/PATH: the handler just closes. Either an empty
  // response or a clean EOF is acceptable — the server must not crash and
  // must keep serving afterwards.
  (void)Exchange(server.port(), "\r\n\r\n");
  (void)Exchange(server.port(), "GARBAGE\r\n\r\n");
  // An over-long request line (no terminator inside the 4 KiB cap).
  (void)Exchange(server.port(), std::string(8192, 'A'));

  const std::string ok =
      Exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(PromHttpTest, SlowReaderDoesNotWedgeOtherScrapers) {
  MetricsRegistry reg;
  reg.GetCounter("unit.slow")->Add(1);
  obs::PromHttpServer server(&reg);
  ASSERT_TRUE(server.Start(0).ok());

  // A client that connects, dribbles half a request line, and then goes
  // silent. It holds its handler thread until the 5 s socket timeout —
  // meanwhile normal scrapers must be served promptly on other handlers.
  const int slow_fd = ConnectLoopback(server.port());
  ASSERT_GE(slow_fd, 0);
  (void)::send(slow_fd, "GET /met", 8, MSG_NOSIGNAL);

  const auto t0 = std::chrono::steady_clock::now();
  const std::string ok =
      Exchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_LT(elapsed, 2s) << "scrape was serialized behind the slow reader";

  ::close(slow_fd);
  // Stop() must drain the (possibly still timing-out) slow handler without
  // hanging; closing the fd above makes its recv fail fast.
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace idba
