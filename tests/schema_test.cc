#include "objectmodel/schema.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

TEST(SchemaTest, DefineAndFind) {
  SchemaCatalog cat;
  auto id = cat.DefineClass("Link");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cat.Find(*id)->name(), "Link");
  EXPECT_EQ(cat.FindByName("Link")->id(), *id);
  EXPECT_EQ(cat.Find(999), nullptr);
  EXPECT_EQ(cat.FindByName("Nope"), nullptr);
  EXPECT_EQ(cat.class_count(), 1u);
}

TEST(SchemaTest, DuplicateClassRejected) {
  SchemaCatalog cat;
  ASSERT_TRUE(cat.DefineClass("Link").ok());
  EXPECT_EQ(cat.DefineClass("Link").status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, UnknownBaseRejected) {
  SchemaCatalog cat;
  EXPECT_EQ(cat.DefineClass("Sub", 42).status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AttributesWithDefaults) {
  SchemaCatalog cat;
  ClassId link = cat.DefineClass("Link").value();
  ASSERT_TRUE(cat.AddAttribute(link, "Utilization", ValueType::kDouble,
                               Value(0.25)).ok());
  auto attrs = cat.AllAttributes(link);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0]->name, "Utilization");
  EXPECT_EQ(attrs[0]->default_value, Value(0.25));
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  SchemaCatalog cat;
  ClassId link = cat.DefineClass("Link").value();
  ASSERT_TRUE(cat.AddAttribute(link, "Name", ValueType::kString).ok());
  EXPECT_EQ(cat.AddAttribute(link, "Name", ValueType::kString).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, InheritanceConcatenatesBaseFirst) {
  SchemaCatalog cat;
  ClassId base = cat.DefineClass("Hardware").value();
  ASSERT_TRUE(cat.AddAttribute(base, "Name", ValueType::kString).ok());
  ASSERT_TRUE(cat.AddAttribute(base, "Status", ValueType::kInt).ok());
  ClassId dev = cat.DefineClass("Device", base).value();
  ASSERT_TRUE(cat.AddAttribute(dev, "IpAddress", ValueType::kString).ok());

  auto attrs = cat.AllAttributes(dev);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0]->name, "Name");
  EXPECT_EQ(attrs[1]->name, "Status");
  EXPECT_EQ(attrs[2]->name, "IpAddress");

  EXPECT_EQ(cat.ResolveAttribute(dev, "Status"), std::optional<size_t>(1));
  EXPECT_EQ(cat.ResolveAttribute(dev, "IpAddress"), std::optional<size_t>(2));
  EXPECT_EQ(cat.ResolveAttribute(base, "IpAddress"), std::nullopt);
}

TEST(SchemaTest, InheritedAttributeCollisionRejected) {
  SchemaCatalog cat;
  ClassId base = cat.DefineClass("Base").value();
  ASSERT_TRUE(cat.AddAttribute(base, "Name", ValueType::kString).ok());
  ClassId sub = cat.DefineClass("Sub", base).value();
  EXPECT_EQ(cat.AddAttribute(sub, "Name", ValueType::kString).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, IsAWalksChain) {
  SchemaCatalog cat;
  ClassId a = cat.DefineClass("A").value();
  ClassId b = cat.DefineClass("B", a).value();
  ClassId c = cat.DefineClass("C", b).value();
  ClassId other = cat.DefineClass("Other").value();
  EXPECT_TRUE(cat.IsA(c, a));
  EXPECT_TRUE(cat.IsA(c, b));
  EXPECT_TRUE(cat.IsA(c, c));
  EXPECT_FALSE(cat.IsA(a, c));
  EXPECT_FALSE(cat.IsA(c, other));
}

TEST(SchemaTest, ThreeLevelInheritanceOrdering) {
  SchemaCatalog cat;
  ClassId a = cat.DefineClass("A").value();
  ASSERT_TRUE(cat.AddAttribute(a, "x", ValueType::kInt).ok());
  ClassId b = cat.DefineClass("B", a).value();
  ASSERT_TRUE(cat.AddAttribute(b, "y", ValueType::kInt).ok());
  ClassId c = cat.DefineClass("C", b).value();
  ASSERT_TRUE(cat.AddAttribute(c, "z", ValueType::kInt).ok());
  auto attrs = cat.AllAttributes(c);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0]->name, "x");
  EXPECT_EQ(attrs[1]->name, "y");
  EXPECT_EQ(attrs[2]->name, "z");
}

}  // namespace
}  // namespace idba
