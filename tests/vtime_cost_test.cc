#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/cost_model.h"
#include "common/vtime.h"
#include "net/rpc_meter.h"

namespace idba {
namespace {

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  EXPECT_EQ(clock.Advance(100), 100);
  EXPECT_EQ(clock.Advance(50), 150);
  EXPECT_EQ(clock.Now(), 150);
}

TEST(VirtualClockTest, ObserveTakesMax) {
  VirtualClock clock;
  clock.Advance(100);
  EXPECT_EQ(clock.Observe(60), 100);   // older timestamp: no change
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_EQ(clock.Observe(250), 250);  // newer: jump forward
  EXPECT_EQ(clock.Now(), 250);
}

TEST(VirtualClockTest, ResetRestarts) {
  VirtualClock clock;
  clock.Advance(500);
  clock.Reset();
  EXPECT_EQ(clock.Now(), 0);
}

TEST(VirtualClockTest, ConcurrentAdvanceIsLossless) {
  VirtualClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 10000; ++i) clock.Advance(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.Now(), 40000);
}

TEST(CostModelTest, MessageCostHasBaseAndBandwidthTerm) {
  CostModelOptions opts;
  opts.message_base = 100 * kVMillisecond;
  opts.network_bandwidth_bps = 1'000'000;  // 1 MB/s
  CostModel cm(opts);
  EXPECT_EQ(cm.MessageCost(0), 100 * kVMillisecond);
  // 1 MB at 1 MB/s = 1 virtual second extra.
  EXPECT_EQ(cm.MessageCost(1'000'000), 100 * kVMillisecond + kVSecond);
}

TEST(CostModelTest, DiskCostScalesWithPages) {
  CostModelOptions opts;
  opts.disk_seek = 10 * kVMillisecond;
  opts.disk_page_transfer = 2 * kVMillisecond;
  CostModel cm(opts);
  EXPECT_EQ(cm.DiskCost(1), 12 * kVMillisecond);
  EXPECT_EQ(cm.DiskCost(5), 20 * kVMillisecond);
}

TEST(CostModelTest, DefaultsLandLazyPathInPaperBand) {
  // The lazy propagation path is 5 hops (commit reply, update report,
  // notification, fetch request, fetch reply) + a disk access + client
  // CPU. With default calibration it must land inside 1-2 virtual seconds
  // (§4.3: "in the order of 1 to 2 seconds").
  CostModel cm;
  VTime path = 5 * cm.MessageCost(300) + cm.DiskCost(1) +
               cm.ServerRequestCpu() * 2 + cm.NotificationDispatchCpu() +
               cm.DisplayRefreshCpu();
  EXPECT_GE(path, 1 * kVSecond);
  EXPECT_LE(path, 2 * kVSecond);
}

TEST(RpcMeterTest, RoundTripChargesBothHopsAndServer) {
  CostModelOptions opts;
  opts.message_base = 10 * kVMillisecond;
  opts.network_bandwidth_bps = 1'000'000'000;  // negligible byte term
  opts.server_request_cpu = 5 * kVMillisecond;
  RpcMeter meter{CostModel(opts)};
  VirtualClock server;
  VTime done = meter.ChargeRoundTrip(/*client_now=*/0, &server, 100, 100, 0);
  EXPECT_NEAR(done, 25 * kVMillisecond, kVMillisecond);
  EXPECT_EQ(meter.rpcs(), 1u);
  EXPECT_EQ(meter.messages(), 2u);
}

TEST(RpcMeterTest, ServerCpuSerializesConcurrentClients) {
  CostModelOptions opts;
  opts.message_base = 0;
  opts.server_request_cpu = 10 * kVMillisecond;
  RpcMeter meter{CostModel(opts)};
  VirtualClock server;
  // Two clients issue at the same instant; the second completes one CPU
  // quantum later (queueing behind the first).
  VTime a = meter.ChargeRoundTrip(0, &server, 10, 10, 0);
  VTime b = meter.ChargeRoundTrip(0, &server, 10, 10, 0);
  EXPECT_EQ(b - a, 10 * kVMillisecond);
}

TEST(RpcMeterTest, DiskMissesAddLatency) {
  RpcMeter meter;
  VirtualClock s1, s2;
  VTime no_miss = meter.ChargeRoundTrip(0, &s1, 100, 100, 0);
  VTime with_miss = meter.ChargeRoundTrip(0, &s2, 100, 100, 3);
  EXPECT_GT(with_miss, no_miss);
}

TEST(RpcMeterTest, ExtraRoundTripsCountMessages) {
  RpcMeter meter;
  VirtualClock server;
  meter.ChargeRoundTrip(0, &server, 10, 10, 0, /*extra_round_trips=*/2);
  EXPECT_EQ(meter.messages(), 6u);  // 2 main + 2*2 callback traffic
}

}  // namespace
}  // namespace idba
