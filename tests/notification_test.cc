#include "core/notification.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

DatabaseObject MakeImage(uint64_t oid) {
  DatabaseObject obj(Oid(oid), 3, 2);
  obj.Set(0, Value(0.7));
  obj.Set(1, Value("name-" + std::to_string(oid)));
  obj.set_version(4);
  return obj;
}

TEST(NotificationTest, UpdateNotifyRoundTripLazy) {
  UpdateNotifyMessage msg;
  msg.txn = 12;
  msg.commit_vtime = 5 * kVSecond;
  msg.committed = true;
  msg.updated = {Oid(1), Oid(2), Oid(3)};
  msg.erased = {Oid(9)};

  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  msg.EncodeTo(&enc);
  Decoder dec(buf);
  UpdateNotifyMessage out;
  ASSERT_TRUE(UpdateNotifyMessage::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.txn, 12u);
  EXPECT_EQ(out.commit_vtime, 5 * kVSecond);
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.updated, msg.updated);
  EXPECT_EQ(out.erased, msg.erased);
  EXPECT_TRUE(out.images.empty());
  EXPECT_TRUE(dec.exhausted());
}

TEST(NotificationTest, UpdateNotifyRoundTripEager) {
  UpdateNotifyMessage msg;
  msg.txn = 7;
  msg.updated = {Oid(5), Oid(6)};
  msg.images = {MakeImage(5), MakeImage(6)};
  msg.committed = false;  // an abort resolution

  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  msg.EncodeTo(&enc);
  Decoder dec(buf);
  UpdateNotifyMessage out;
  ASSERT_TRUE(UpdateNotifyMessage::DecodeFrom(&dec, &out).ok());
  EXPECT_FALSE(out.committed);
  ASSERT_EQ(out.images.size(), 2u);
  EXPECT_EQ(out.images[0], msg.images[0]);
  EXPECT_EQ(out.images[1], msg.images[1]);
}

TEST(NotificationTest, WireBytesBoundsEncodedSize) {
  UpdateNotifyMessage msg;
  msg.txn = 1;
  msg.updated = {Oid(1), Oid(2), Oid(3), Oid(4)};
  msg.erased = {Oid(5)};
  msg.images = {MakeImage(1), MakeImage(2)};
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  msg.EncodeTo(&enc);
  // WireBytes is the cost-accounting estimate; it must bound the real
  // encoding and not exceed it by more than the fixed header slack.
  EXPECT_GE(msg.WireBytes(), buf.size());
  EXPECT_LE(msg.WireBytes(), buf.size() + 64);
}

TEST(NotificationTest, IntentNotifyRoundTrip) {
  IntentNotifyMessage msg;
  msg.txn = 99;
  msg.intent_vtime = 1234;
  msg.oids = {Oid(10), Oid(20)};
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  msg.EncodeTo(&enc);
  EXPECT_GE(msg.WireBytes(), buf.size());

  Decoder dec(buf);
  IntentNotifyMessage out;
  ASSERT_TRUE(IntentNotifyMessage::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.txn, 99u);
  EXPECT_EQ(out.intent_vtime, 1234);
  EXPECT_EQ(out.oids, msg.oids);
}

TEST(NotificationTest, DecodeTruncatedIsCorruption) {
  UpdateNotifyMessage msg;
  msg.txn = 1;
  msg.updated = {Oid(1)};
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  msg.EncodeTo(&enc);
  buf.resize(buf.size() / 2);
  Decoder dec(buf);
  UpdateNotifyMessage out;
  EXPECT_EQ(UpdateNotifyMessage::DecodeFrom(&dec, &out).code(),
            StatusCode::kCorruption);
}

TEST(NotificationTest, MessageNamesStable) {
  EXPECT_EQ(UpdateNotifyMessage().name(), "UpdateNotify");
  EXPECT_EQ(IntentNotifyMessage().name(), "IntentNotify");
}

}  // namespace
}  // namespace idba
