// Detection-based consistency (paper §3.3's rejected alternative for
// displays): stale copies may sit in the client cache; transactions
// validate their optimistic reads at commit and abort on staleness.

#include <gtest/gtest.h>

#include "client/database_client.h"

namespace idba {
namespace {

class DetectionModeTest : public ::testing::Test {
 protected:
  DetectionModeTest() {
    cls_ = server_.schema().DefineClass("Item").value();
    EXPECT_TRUE(
        server_.schema().AddAttribute(cls_, "Counter", ValueType::kInt, Value(int64_t(0)))
            .ok());
    DatabaseClientOptions detection;
    detection.consistency = ConsistencyMode::kDetection;
    a_ = std::make_unique<DatabaseClient>(&server_, 100, &meter_, &bus_, detection);
    b_ = std::make_unique<DatabaseClient>(&server_, 101, &meter_, &bus_, detection);
  }

  Oid Seed(int64_t v) {
    TxnId t = a_->Begin();
    Oid oid = a_->AllocateOid();
    DatabaseObject obj(oid, cls_, 1);
    obj.Set(0, Value(v));
    EXPECT_TRUE(a_->Insert(t, std::move(obj)).ok());
    EXPECT_TRUE(a_->Commit(t).ok());
    return oid;
  }

  DatabaseServer server_;
  NotificationBus bus_;
  RpcMeter meter_;
  ClassId cls_;
  std::unique_ptr<DatabaseClient> a_, b_;
};

TEST_F(DetectionModeTest, StaleCopiesStayInCache) {
  Oid oid = Seed(1);
  // B caches the object optimistically.
  TxnId tb = b_->Begin();
  ASSERT_TRUE(b_->Read(tb, oid).ok());
  ASSERT_TRUE(b_->Abort(tb).ok());
  ASSERT_TRUE(b_->cache().Contains(oid));

  // A commits an update. No callback: B's copy is now stale but present —
  // the defining property (and flaw) of detection for displays.
  TxnId ta = a_->Begin();
  DatabaseObject obj = a_->Read(ta, oid).value();
  obj.Set(0, Value(int64_t(2)));
  ASSERT_TRUE(a_->Write(ta, std::move(obj)).ok());
  ASSERT_TRUE(a_->Commit(ta).ok());

  ASSERT_TRUE(b_->cache().Contains(oid));
  EXPECT_EQ(b_->cache().Get(oid)->Get(0), Value(int64_t(1)));  // stale!
}

TEST_F(DetectionModeTest, StaleReadAbortsAtCommit) {
  Oid oid = Seed(1);
  // B reads (and caches) version 1.
  TxnId tb = b_->Begin();
  ASSERT_TRUE(b_->Read(tb, oid).ok());
  ASSERT_TRUE(b_->Abort(tb).ok());

  // A bumps to version 2.
  TxnId ta = a_->Begin();
  DatabaseObject obj = a_->Read(ta, oid).value();
  obj.Set(0, Value(int64_t(2)));
  ASSERT_TRUE(a_->Write(ta, std::move(obj)).ok());
  ASSERT_TRUE(a_->Commit(ta).ok());

  // B runs an RMW from its stale cached copy: validation must abort it.
  TxnId tb2 = b_->Begin();
  DatabaseObject stale = b_->Read(tb2, oid).value();
  stale.Set(0, Value(int64_t(99)));
  ASSERT_TRUE(b_->Write(tb2, std::move(stale)).ok());
  auto commit = b_->Commit(tb2);
  EXPECT_FALSE(commit.ok());
  EXPECT_TRUE(commit.status().IsAborted()) << commit.status().ToString();
  EXPECT_EQ(b_->validation_aborts(), 1u);

  // The lost update never happened; the stale copy was dropped, so the
  // retry sees the current value and succeeds.
  TxnId tb3 = b_->Begin();
  DatabaseObject fresh = b_->Read(tb3, oid).value();
  EXPECT_EQ(fresh.Get(0), Value(int64_t(2)));
  fresh.Set(0, Value(int64_t(3)));
  ASSERT_TRUE(b_->Write(tb3, std::move(fresh)).ok());
  EXPECT_TRUE(b_->Commit(tb3).ok());
}

TEST_F(DetectionModeTest, FreshReadsValidateAndCommit) {
  Oid oid = Seed(1);
  TxnId t = b_->Begin();
  DatabaseObject obj = b_->Read(t, oid).value();
  obj.Set(0, Value(int64_t(5)));
  ASSERT_TRUE(b_->Write(t, std::move(obj)).ok());
  EXPECT_TRUE(b_->Commit(t).ok());
  EXPECT_EQ(b_->validation_aborts(), 0u);
}

TEST_F(DetectionModeTest, ServerDoesNotTrackDetectionCopies) {
  Oid oid = Seed(1);
  TxnId t = b_->Begin();
  ASSERT_TRUE(b_->Read(t, oid).ok());
  ASSERT_TRUE(b_->Abort(t).ok());
  // No callback registration: the server's copy table is empty for B.
  EXPECT_TRUE(server_.callback_manager().CopyHolders(oid).empty());
}

TEST_F(DetectionModeTest, ReadOnlyTransactionsValidateToo) {
  Oid oid = Seed(1);
  TxnId tb = b_->Begin();
  ASSERT_TRUE(b_->Read(tb, oid).ok());

  // Concurrent update commits before B does.
  TxnId ta = a_->Begin();
  DatabaseObject obj = a_->Read(ta, oid).value();
  obj.Set(0, Value(int64_t(2)));
  ASSERT_TRUE(a_->Write(ta, std::move(obj)).ok());
  ASSERT_TRUE(a_->Commit(ta).ok());

  auto commit = b_->Commit(tb);
  EXPECT_TRUE(commit.status().IsAborted());
}

TEST_F(DetectionModeTest, LostUpdateAnomalyPreventedUnderConcurrency) {
  Oid oid = Seed(0);
  constexpr int kRounds = 20;
  auto work = [&](DatabaseClient* client) {
    for (int i = 0; i < kRounds; ++i) {
      for (;;) {
        TxnId t = client->Begin();
        auto obj = client->Read(t, oid);
        if (!obj.ok()) {
          (void)client->Abort(t);
          continue;
        }
        DatabaseObject o = std::move(obj).value();
        o.Set(0, Value(o.Get(0).AsInt() + 1));
        if (!client->Write(t, std::move(o)).ok()) {
          (void)client->Abort(t);
          continue;
        }
        if (client->Commit(t).ok()) break;
        // Validation abort: cache dropped, retry re-reads fresh.
      }
    }
  };
  std::thread ta([&] { work(a_.get()); });
  std::thread tb([&] { work(b_.get()); });
  ta.join();
  tb.join();
  EXPECT_EQ(server_.heap().Read(oid).value().Get(0),
            Value(int64_t(2 * kRounds)));
}

}  // namespace
}  // namespace idba
