#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include <thread>

namespace idba {
namespace {

class TxnManagerTest : public ::testing::Test {
 protected:
  TxnManagerTest() : pool_(&data_disk_, {.frame_count = 32}) {
    heap_ = std::move(HeapStore::Open(&pool_, 0).value());
    wal_ = std::make_unique<Wal>(&wal_disk_);
    mgr_ = std::make_unique<TxnManager>(heap_.get(), wal_.get());
  }

  DatabaseObject MakeObj(Oid oid, int64_t v) {
    DatabaseObject obj(oid, 1, 1);
    obj.Set(0, Value(v));
    return obj;
  }

  Oid Seed(int64_t v) {
    Oid oid = mgr_->AllocateOid();
    TxnId t = mgr_->Begin();
    EXPECT_TRUE(mgr_->Insert(t, MakeObj(oid, v)).ok());
    EXPECT_TRUE(mgr_->Commit(t).ok());
    return oid;
  }

  MemDisk data_disk_, wal_disk_;
  BufferPool pool_;
  std::unique_ptr<HeapStore> heap_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<TxnManager> mgr_;
};

TEST_F(TxnManagerTest, CommitMakesWritesVisible) {
  Oid oid = Seed(10);
  TxnId t = mgr_->Begin();
  auto obj = mgr_->Get(t, oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().Get(0), Value(int64_t(10)));
  ASSERT_TRUE(mgr_->Commit(t).ok());
}

TEST_F(TxnManagerTest, AbortDiscardsWrites) {
  Oid oid = Seed(10);
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 99)).ok());
  ASSERT_TRUE(mgr_->Abort(t).ok());
  TxnId t2 = mgr_->Begin();
  EXPECT_EQ(mgr_->Get(t2, oid).value().Get(0), Value(int64_t(10)));
  ASSERT_TRUE(mgr_->Commit(t2).ok());
  EXPECT_EQ(mgr_->aborts(), 1u);
}

TEST_F(TxnManagerTest, ReadYourOwnWrites) {
  Oid oid = Seed(1);
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 2)).ok());
  EXPECT_EQ(mgr_->Get(t, oid).value().Get(0), Value(int64_t(2)));
  ASSERT_TRUE(mgr_->Commit(t).ok());
}

TEST_F(TxnManagerTest, InsertVisibleToSelfBeforeCommit) {
  TxnId t = mgr_->Begin();
  Oid oid = mgr_->AllocateOid();
  ASSERT_TRUE(mgr_->Insert(t, MakeObj(oid, 5)).ok());
  EXPECT_EQ(mgr_->Get(t, oid).value().Get(0), Value(int64_t(5)));
  ASSERT_TRUE(mgr_->Commit(t).ok());
  EXPECT_TRUE(heap_->Contains(oid));
}

TEST_F(TxnManagerTest, EraseCommits) {
  Oid oid = Seed(10);
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Erase(t, oid).ok());
  EXPECT_EQ(mgr_->Get(t, oid).status().code(), StatusCode::kNotFound);
  auto result = mgr_->Commit(t);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().erased, std::vector<Oid>{oid});
  EXPECT_FALSE(heap_->Contains(oid));
}

TEST_F(TxnManagerTest, VersionsBumpOnEveryCommit) {
  Oid oid = Seed(0);
  EXPECT_EQ(heap_->Read(oid).value().version(), 1u);  // insert = v1
  for (int i = 1; i <= 3; ++i) {
    TxnId t = mgr_->Begin();
    ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, i)).ok());
    ASSERT_TRUE(mgr_->Commit(t).ok());
    EXPECT_EQ(heap_->Read(oid).value().version(), static_cast<uint64_t>(1 + i));
  }
}

TEST_F(TxnManagerTest, LastWritePerOidWins) {
  Oid oid = Seed(0);
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 1)).ok());
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 2)).ok());
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 3)).ok());
  auto result = mgr_->Commit(t);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().updated.size(), 1u);
  EXPECT_EQ(heap_->Read(oid).value().Get(0), Value(int64_t(3)));
}

TEST_F(TxnManagerTest, StrictTwoPhase_WriterBlocksReader) {
  Oid oid = Seed(1);
  TxnId writer = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(writer, MakeObj(oid, 2)).ok());
  std::atomic<bool> read_done{false};
  int64_t seen = -1;
  std::thread reader([&] {
    TxnId r = mgr_->Begin();
    auto obj = mgr_->Get(r, oid);
    if (obj.ok()) seen = obj.value().Get(0).AsInt();
    (void)mgr_->Commit(r);
    read_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(read_done.load());  // S blocked behind X
  ASSERT_TRUE(mgr_->Commit(writer).ok());
  reader.join();
  EXPECT_EQ(seen, 2);  // reader saw the committed value, never a torn state
}

TEST_F(TxnManagerTest, CommitHookSeesFinalImages) {
  Oid oid = Seed(1);
  std::vector<DatabaseObject> seen;
  mgr_->set_commit_hook(
      [&](const CommitResult& r) { seen = r.updated; });
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 42)).ok());
  ASSERT_TRUE(mgr_->Commit(t).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].Get(0), Value(int64_t(42)));
  EXPECT_EQ(seen[0].version(), 2u);
}

TEST_F(TxnManagerTest, XLockHookFiresOnWrite) {
  Oid oid = Seed(1);
  std::vector<Oid> intents;
  mgr_->set_xlock_hook([&](TxnId, Oid o) { intents.push_back(o); });
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t, MakeObj(oid, 2)).ok());
  EXPECT_EQ(intents, std::vector<Oid>{oid});
  ASSERT_TRUE(mgr_->Abort(t).ok());
}

TEST_F(TxnManagerTest, AbortHookFires) {
  TxnId aborted = 0;
  mgr_->set_abort_hook([&](TxnId t) { aborted = t; });
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Abort(t).ok());
  EXPECT_EQ(aborted, t);
}

TEST_F(TxnManagerTest, OperationsOnFinishedTxnRejected) {
  Oid oid = Seed(1);
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Commit(t).ok());
  EXPECT_EQ(mgr_->Put(t, MakeObj(oid, 9)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr_->Get(t, oid).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr_->Commit(t).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr_->Get(999, oid).status().code(), StatusCode::kNotFound);
}

TEST_F(TxnManagerTest, DuplicateInsertDetected) {
  Oid oid = Seed(1);
  TxnId t = mgr_->Begin();
  EXPECT_EQ(mgr_->Insert(t, MakeObj(oid, 2)).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(mgr_->Abort(t).ok());
}

TEST_F(TxnManagerTest, StateTransitions) {
  TxnId t = mgr_->Begin();
  EXPECT_EQ(mgr_->GetState(t), TxnState::kActive);
  ASSERT_TRUE(mgr_->Commit(t).ok());
  EXPECT_EQ(mgr_->GetState(t), TxnState::kCommitted);
  TxnId t2 = mgr_->Begin();
  ASSERT_TRUE(mgr_->Abort(t2).ok());
  EXPECT_EQ(mgr_->GetState(t2), TxnState::kAborted);
}

TEST_F(TxnManagerTest, OidAllocationSkipsExisting) {
  Oid oid = Seed(1);
  // A fresh manager over the same heap must not re-issue `oid`.
  TxnManager mgr2(heap_.get(), wal_.get());
  EXPECT_GT(mgr2.AllocateOid().value, oid.value);
}

TEST_F(TxnManagerTest, ConcurrentDisjointCommitsAllSucceed) {
  std::vector<Oid> oids;
  for (int i = 0; i < 8; ++i) oids.push_back(Seed(i));
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 20; ++round) {
        TxnId t = mgr_->Begin();
        ASSERT_TRUE(mgr_->Put(t, MakeObj(oids[i], round)).ok());
        ASSERT_TRUE(mgr_->Commit(t).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(heap_->Read(oids[i]).value().Get(0), Value(int64_t(19)));
    EXPECT_EQ(heap_->Read(oids[i]).value().version(), 21u);
  }
}

}  // namespace
}  // namespace idba
