// Online fuzzy checkpointing: dirty-page sweeps + WAL truncation while
// transactions keep committing, and the background Checkpointer driving it.
// Recovery after a crash must stay bounded by WAL-since-last-checkpoint.

#include "server/checkpointer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "server/durable.h"
#include "txn/recovery.h"

namespace idba {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idba_ckpt_" + std::to_string(::getpid()) +
           "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ClassId EnsureSchema(DatabaseServer& server) {
    if (const ClassDef* cls = server.schema().FindByName("Item")) {
      return cls->id();
    }
    ClassId cls = server.schema().DefineClass("Item").value();
    EXPECT_TRUE(
        server.schema().AddAttribute(cls, "Value", ValueType::kInt).ok());
    return cls;
  }

  Oid CommitInsert(DatabaseServer& server, ClassId cls, int64_t v,
                   ClientId client = 0) {
    TxnId t = server.Begin(client);
    Oid oid = server.AllocateOid();
    DatabaseObject obj(oid, cls, 1);
    obj.Set(0, Value(v));
    EXPECT_TRUE(server.Insert(client, t, std::move(obj), nullptr).ok());
    EXPECT_TRUE(server.Commit(client, t, nullptr).ok());
    return oid;
  }

  std::string dir_;
};

TEST_F(CheckpointTest, FuzzyCheckpointBoundsRecovery) {
  std::vector<Oid> oids;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    for (int i = 0; i < 50; ++i) {
      oids.push_back(CommitInsert(db->server(), cls, i));
    }
    DatabaseServer::CheckpointStats cs;
    ASSERT_TRUE(db->server().FuzzyCheckpoint(&cs).ok());
    EXPECT_GT(cs.fence_lsn, 0u);
    EXPECT_GT(cs.pages_written, 0u);
    EXPECT_GT(cs.bytes_truncated, 0u);
    EXPECT_EQ(db->server().wal().truncate_below_lsn(), cs.fence_lsn);
    for (int i = 50; i < 53; ++i) {
      oids.push_back(CommitInsert(db->server(), cls, i));
    }
    // crash: no orderly Checkpoint()
  }
  auto db = DurableDatabase::Open(dir_).value();
  EXPECT_EQ(db->server().heap().object_count(), oids.size());
  for (size_t i = 0; i < oids.size(); ++i) {
    EXPECT_EQ(db->server().heap().Read(oids[i]).value().Get(0),
              Value(static_cast<int64_t>(i)));
  }
  // Replay covered only the post-checkpoint suffix (checkpoint-end plus
  // three short transactions), not the 50 checkpointed ones.
  EXPECT_LE(db->recovery_stats().records_scanned, 10u);
  EXPECT_LE(db->recovery_stats().committed_txns, 3u);
}

TEST_F(CheckpointTest, RepeatedCheckpointsKeepRecoveryFlat) {
  size_t total = 0;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 20; ++i) {
        CommitInsert(db->server(), cls, round * 100 + i);
        ++total;
      }
      ASSERT_TRUE(db->server().FuzzyCheckpoint().ok());
    }
  }
  auto db = DurableDatabase::Open(dir_).value();
  EXPECT_EQ(db->server().heap().object_count(), total);
  // History grew 5x, but replay sees only what follows the last checkpoint.
  EXPECT_LE(db->recovery_stats().records_scanned, 3u);
}

TEST_F(CheckpointTest, CheckpointOnIdleServerIsHarmlessAndRepeatable) {
  DatabaseServer server;
  ASSERT_TRUE(server.FuzzyCheckpoint().ok());
  ASSERT_TRUE(server.FuzzyCheckpoint().ok());
  ClassId cls = EnsureSchema(server);
  Oid a = CommitInsert(server, cls, 42);
  ASSERT_TRUE(server.FuzzyCheckpoint().ok());
  EXPECT_EQ(server.heap().Read(a).value().Get(0), Value(int64_t(42)));
}

TEST_F(CheckpointTest, ConcurrentCommitsSurviveCrashAcrossCheckpoints) {
  MemDisk data_disk, wal_disk;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::vector<std::pair<Oid, int64_t>>> written(kThreads);
  PageId data_pages = 0;
  {
    auto server = std::make_unique<DatabaseServer>(&data_disk, &wal_disk,
                                                   0, DatabaseServerOptions{});
    ClassId cls = EnsureSchema(*server);
    std::atomic<bool> done{false};
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        for (int i = 0; i < kPerThread; ++i) {
          int64_t v = w * 1000 + i;
          Oid oid = CommitInsert(*server, cls, v, static_cast<ClientId>(w));
          written[w].emplace_back(oid, v);
        }
      });
    }
    // Checkpoint aggressively while the workers commit.
    std::thread checkpointer([&] {
      while (!done.load()) {
        EXPECT_TRUE(server->FuzzyCheckpoint().ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (auto& t : workers) t.join();
    done.store(true);
    checkpointer.join();
    EXPECT_EQ(server->commits(), uint64_t(kThreads * kPerThread));
    data_pages = server->heap().data_page_count();
    // Simulate the crash: all buffered-but-unflushed data pages vanish.
    server->buffer_pool().DropAllNoFlush();
  }
  // Recover from the disks alone, exactly as a restarted process would.
  BufferPool pool(&data_disk, {.frame_count = 64});
  auto heap = HeapStore::Open(&pool, data_pages);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto stats = RecoverFromWal(&wal_disk, heap.value().get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  size_t present = 0;
  for (const auto& per_thread : written) {
    for (const auto& [oid, v] : per_thread) {
      auto obj = heap.value()->Read(oid);
      ASSERT_TRUE(obj.ok()) << "lost a committed object: "
                            << obj.status().ToString();
      EXPECT_EQ(obj.value().Get(0), Value(v));
      ++present;
    }
  }
  EXPECT_EQ(present, size_t(kThreads * kPerThread));
}

TEST_F(CheckpointTest, BackgroundIntervalTriggerCheckpoints) {
  DatabaseServer server;
  ClassId cls = EnsureSchema(server);
  Checkpointer cp(&server, {.interval_ms = 5});
  cp.Start();
  for (int i = 0; i < 20; ++i) {
    CommitInsert(server, cls, i);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Wait (bounded) for at least one checkpoint to land.
  for (int i = 0; i < 200 && cp.stats().checkpoints == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cp.Stop();
  Checkpointer::Stats stats = cp.stats();
  EXPECT_GE(stats.checkpoints, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.last_fence_lsn, 0u);
  EXPECT_GT(server.wal().truncate_below_lsn(), 0u);
}

TEST_F(CheckpointTest, ByteThresholdTriggerCheckpoints) {
  DatabaseServer server;
  ClassId cls = EnsureSchema(server);
  Checkpointer cp(&server, {.wal_bytes = 1});
  cp.Start();
  CommitInsert(server, cls, 7);
  for (int i = 0; i < 300 && cp.stats().checkpoints == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cp.Stop();
  EXPECT_GE(cp.stats().checkpoints, 1u);
}

TEST_F(CheckpointTest, StartIsNoOpWithoutTriggers) {
  DatabaseServer server;
  Checkpointer cp(&server, {});
  cp.Start();  // both triggers 0: nothing to do
  cp.Stop();
  EXPECT_EQ(cp.stats().checkpoints, 0u);
  // Manual triggering still works.
  ASSERT_TRUE(cp.TriggerNow().ok());
  EXPECT_EQ(cp.stats().checkpoints, 1u);
}

}  // namespace
}  // namespace idba
