// Cache-coherency properties under randomized concurrent workloads.
//
// The avoidance-based protocol's contract (§3.3): a client never reads
// stale data from its cache. Checked two ways: (1) versions observed by
// any client for any object never decrease (monotonic reads) and never lag
// a version the client itself committed; (2) at quiescence every cached
// copy equals the server's current image exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/database_client.h"
#include "client/txn_retry.h"
#include "common/rng.h"

namespace idba {
namespace {

class CoherencyPropertyTest : public ::testing::Test {
 protected:
  CoherencyPropertyTest() {
    cls_ = server_.schema().DefineClass("Item").value();
    EXPECT_TRUE(server_.schema()
                    .AddAttribute(cls_, "Counter", ValueType::kInt, Value(int64_t(0)))
                    .ok());
    EXPECT_TRUE(server_.schema()
                    .AddAttribute(cls_, "Writer", ValueType::kInt, Value(int64_t(0)))
                    .ok());
  }

  std::vector<Oid> SeedObjects(int n) {
    DatabaseClient seeder(&server_, 99, &meter_, &bus_);
    std::vector<Oid> oids;
    TxnId t = seeder.Begin();
    for (int i = 0; i < n; ++i) {
      Oid oid = seeder.AllocateOid();
      DatabaseObject obj(oid, cls_, 2);
      obj.Set(0, Value(int64_t(0)));
      obj.Set(1, Value(int64_t(0)));
      EXPECT_TRUE(seeder.Insert(t, std::move(obj)).ok());
      oids.push_back(oid);
    }
    EXPECT_TRUE(seeder.Commit(t).ok());
    return oids;
  }

  DatabaseServer server_;
  NotificationBus bus_;
  RpcMeter meter_;
  ClassId cls_;
};

TEST_F(CoherencyPropertyTest, MonotonicReadsAndQuiescentExactness) {
  constexpr int kClients = 4;
  constexpr int kObjects = 10;
  constexpr int kOpsPerClient = 120;
  std::vector<Oid> oids = SeedObjects(kObjects);

  std::vector<std::unique_ptr<DatabaseClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(
        std::make_unique<DatabaseClient>(&server_, 100 + c, &meter_, &bus_));
  }

  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000 + c);
      // Per-object high-water mark of observed versions.
      std::vector<uint64_t> seen(kObjects, 0);
      DatabaseClient* client = clients[c].get();
      for (int op = 0; op < kOpsPerClient; ++op) {
        int idx = static_cast<int>(rng.NextBelow(kObjects));
        Oid oid = oids[idx];
        if (rng.NextBool(0.6)) {
          // Plain read (may be a cache hit — must never go backwards).
          auto obj = client->ReadCurrent(oid);
          if (!obj.ok()) continue;
          if (obj.value().version() < seen[idx]) violation = true;
          seen[idx] = std::max(seen[idx], obj.value().version());
        } else {
          // RMW increment via the retry helper.
          auto result = RunTransaction(client, [&](ClientApi& cl, TxnId t) {
            IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, cl.Read(t, oid));
            if (obj.version() < seen[idx]) violation = true;
            obj.Set(0, Value(obj.Get(0).AsInt() + 1));
            obj.Set(1, Value(int64_t(c)));
            return cl.Write(t, std::move(obj));
          });
          if (result.status.ok()) {
            for (const auto& committed : result.commit.updated) {
              if (committed.oid() == oid) {
                seen[idx] = std::max(seen[idx], committed.version());
              }
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << "a client observed a version go backwards";

  // Quiescence: every cached copy equals the server's current image.
  for (auto& client : clients) {
    for (int i = 0; i < kObjects; ++i) {
      auto cached = client->cache().Get(oids[i]);
      if (!cached.has_value()) continue;
      auto current = server_.heap().Read(oids[i]);
      ASSERT_TRUE(current.ok());
      EXPECT_EQ(cached->version(), current.value().version())
          << "client " << client->id() << " holds a stale copy of object " << i;
      EXPECT_EQ(cached->Get(0), current.value().Get(0));
    }
  }

  // Total increments == final counter sum (no lost updates).
  int64_t total = 0;
  for (Oid oid : oids) {
    total += server_.heap().Read(oid).value().Get(0).AsInt();
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(server_.commits(), static_cast<uint64_t>(total) + 1);  // +1 seed txn
}

TEST_F(CoherencyPropertyTest, CallbackStormKeepsEveryCacheExact) {
  // One writer hammers a single object while many clients keep re-caching
  // it; every invalidate must land before the corresponding commit returns.
  std::vector<Oid> oids = SeedObjects(1);
  Oid oid = oids[0];
  constexpr int kReaders = 6;
  std::vector<std::unique_ptr<DatabaseClient>> readers;
  for (int c = 0; c < kReaders; ++c) {
    readers.push_back(
        std::make_unique<DatabaseClient>(&server_, 200 + c, &meter_, &bus_));
  }
  DatabaseClient writer(&server_, 199, &meter_, &bus_);

  std::atomic<bool> stop{false};
  std::atomic<bool> stale_seen{false};
  std::vector<std::thread> threads;
  for (auto& reader : readers) {
    threads.emplace_back([&, r = reader.get()] {
      uint64_t high_water = 0;
      while (!stop.load()) {
        auto obj = r->ReadCurrent(oid);
        if (!obj.ok()) continue;
        if (obj.value().version() < high_water) stale_seen = true;
        high_water = std::max(high_water, obj.value().version());
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    auto result = RunTransaction(&writer, [&](ClientApi& c, TxnId t) {
      IDBA_ASSIGN_OR_RETURN(DatabaseObject obj, c.Read(t, oid));
      obj.Set(0, Value(obj.Get(0).AsInt() + 1));
      return c.Write(t, std::move(obj));
    });
    ASSERT_TRUE(result.status.ok());
  }
  stop = true;
  for (auto& t : threads) t.join();
  EXPECT_FALSE(stale_seen.load());
  EXPECT_EQ(server_.heap().Read(oid).value().Get(0), Value(int64_t(200)));
}

}  // namespace
}  // namespace idba
