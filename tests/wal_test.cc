#include "storage/wal.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

DatabaseObject MakeObj(uint64_t oid, int64_t v) {
  DatabaseObject obj(Oid(oid), 1, 1);
  obj.Set(0, Value(v));
  obj.set_version(1);
  return obj;
}

WalRecord Update(TxnId txn, uint64_t oid, int64_t v) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.txn = txn;
  rec.oid = Oid(oid);
  rec.after = MakeObj(oid, v);
  return rec;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord rec = Update(7, 42, 99);
  rec.lsn = 13;
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  rec.EncodeTo(&enc);
  Decoder dec(buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.type, WalRecordType::kUpdate);
  EXPECT_EQ(out.lsn, 13u);
  EXPECT_EQ(out.txn, 7u);
  EXPECT_EQ(out.oid, Oid(42));
  EXPECT_EQ(out.after, rec.after);
}

TEST(WalTest, AppendAssignsMonotonicLsns) {
  MemDisk disk;
  Wal wal(&disk);
  EXPECT_EQ(wal.Append(Update(1, 1, 1)).value(), 1u);
  EXPECT_EQ(wal.Append(Update(1, 2, 2)).value(), 2u);
  EXPECT_EQ(wal.next_lsn(), 3u);
}

TEST(WalTest, ReadAllSeesBufferedRecords) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 10)).ok());
  ASSERT_TRUE(wal.Append(Update(2, 2, 20)).ok());
  auto records = wal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].txn, 1u);
  EXPECT_EQ(records.value()[1].txn, 2u);
}

TEST(WalTest, DiskSeesNothingBeforeFlush) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 10)).ok());
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).value().size(), 0u);
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).value().size(), 1u);
}

TEST(WalTest, ManyRecordsSpanPagesAndSurvive) {
  MemDisk disk;
  Wal wal(&disk);
  const int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(wal.Append(Update(i, i, i * 10)).ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records.value()[i].lsn, static_cast<Lsn>(i + 1));
    EXPECT_EQ(records.value()[i].oid, Oid(i));
  }
  EXPECT_GT(disk.PageCount(), 1u);  // really spanned pages
}

TEST(WalTest, InterleavedFlushesPreserveOrder) {
  MemDisk disk;
  Wal wal(&disk);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wal.Append(Update(1, i, i)).ok());
    if (i % 7 == 0) ASSERT_TRUE(wal.Flush().ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(records.value()[i].oid, Oid(i));
}

TEST(WalTest, RestartContinuesLsnSequence) {
  MemDisk disk;
  {
    Wal wal(&disk);
    ASSERT_TRUE(wal.Append(Update(1, 1, 1)).ok());
    ASSERT_TRUE(wal.Append(Update(1, 2, 2)).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  Wal wal2(&disk);
  EXPECT_EQ(wal2.next_lsn(), 3u);
  ASSERT_TRUE(wal2.Append(Update(2, 3, 3)).ok());
  ASSERT_TRUE(wal2.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[2].lsn, 3u);
}

TEST(WalTest, OversizedRecordRejected) {
  MemDisk disk;
  Wal wal(&disk);
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.txn = 1;
  DatabaseObject obj(Oid(1), 1, 1);
  obj.Set(0, Value(std::string(5000, 'x')));
  rec.oid = obj.oid();
  rec.after = std::move(obj);
  EXPECT_EQ(wal.Append(std::move(rec)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, ResetTruncatesButKeepsLsnSequence) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 1)).ok());
  ASSERT_TRUE(wal.Append(Update(1, 2, 2)).ok());
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_GT(wal.DiskPages(), 0u);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.DiskPages(), 0u);
  EXPECT_EQ(wal.ReadAll().value().size(), 0u);
  // LSNs continue monotonically across the truncation.
  EXPECT_EQ(wal.Append(Update(2, 3, 3)).value(), 3u);
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].lsn, 3u);
}

TEST(WalTest, CommitAndAbortRecordsCarryNoImage) {
  MemDisk disk;
  Wal wal(&disk);
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 9;
  ASSERT_TRUE(wal.Append(std::move(commit)).ok());
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].type, WalRecordType::kCommit);
  EXPECT_EQ(records.value()[0].txn, 9u);
}

}  // namespace
}  // namespace idba
