#include "storage/wal.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace idba {
namespace {

/// Disk whose Sync takes ~1 ms: while one leader pays it, concurrent
/// committers pile up behind flush_in_progress_, so batching is guaranteed
/// (a MemDisk sync is instant, which would make coalescing assertions racy).
class SlowSyncDisk : public Disk {
 public:
  explicit SlowSyncDisk(Disk* base) : base_(base) {}
  Status ReadPage(PageId id, PageData* out) override {
    return base_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const PageData& data) override {
    return base_->WritePage(id, data);
  }
  Status Sync() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Status st = base_->Sync();
    if (st.ok()) syncs_.Add();
    return st;
  }
  Status Truncate() override { return base_->Truncate(); }
  PageId PageCount() const override { return base_->PageCount(); }

 private:
  Disk* base_;
};

DatabaseObject MakeObj(uint64_t oid, int64_t v) {
  DatabaseObject obj(Oid(oid), 1, 1);
  obj.Set(0, Value(v));
  obj.set_version(1);
  return obj;
}

WalRecord Update(TxnId txn, uint64_t oid, int64_t v) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.txn = txn;
  rec.oid = Oid(oid);
  rec.after = MakeObj(oid, v);
  return rec;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord rec = Update(7, 42, 99);
  rec.lsn = 13;
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  rec.EncodeTo(&enc);
  Decoder dec(buf);
  WalRecord out;
  ASSERT_TRUE(WalRecord::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.type, WalRecordType::kUpdate);
  EXPECT_EQ(out.lsn, 13u);
  EXPECT_EQ(out.txn, 7u);
  EXPECT_EQ(out.oid, Oid(42));
  EXPECT_EQ(out.after, rec.after);
}

TEST(WalTest, AppendAssignsMonotonicLsns) {
  MemDisk disk;
  Wal wal(&disk);
  EXPECT_EQ(wal.Append(Update(1, 1, 1)).value(), 1u);
  EXPECT_EQ(wal.Append(Update(1, 2, 2)).value(), 2u);
  EXPECT_EQ(wal.next_lsn(), 3u);
}

TEST(WalTest, ReadAllSeesBufferedRecords) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 10)).ok());
  ASSERT_TRUE(wal.Append(Update(2, 2, 20)).ok());
  auto records = wal.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].txn, 1u);
  EXPECT_EQ(records.value()[1].txn, 2u);
}

TEST(WalTest, DiskSeesNothingBeforeFlush) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 10)).ok());
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).value().size(), 0u);
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).value().size(), 1u);
}

TEST(WalTest, ManyRecordsSpanPagesAndSurvive) {
  MemDisk disk;
  Wal wal(&disk);
  const int kRecords = 500;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(wal.Append(Update(i, i, i * 10)).ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records.value()[i].lsn, static_cast<Lsn>(i + 1));
    EXPECT_EQ(records.value()[i].oid, Oid(i));
  }
  EXPECT_GT(disk.PageCount(), 1u);  // really spanned pages
}

TEST(WalTest, InterleavedFlushesPreserveOrder) {
  MemDisk disk;
  Wal wal(&disk);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wal.Append(Update(1, i, i)).ok());
    if (i % 7 == 0) ASSERT_TRUE(wal.Flush().ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(records.value()[i].oid, Oid(i));
}

TEST(WalTest, RestartContinuesLsnSequence) {
  MemDisk disk;
  {
    Wal wal(&disk);
    ASSERT_TRUE(wal.Append(Update(1, 1, 1)).ok());
    ASSERT_TRUE(wal.Append(Update(1, 2, 2)).ok());
    ASSERT_TRUE(wal.Flush().ok());
  }
  Wal wal2(&disk);
  EXPECT_EQ(wal2.next_lsn(), 3u);
  ASSERT_TRUE(wal2.Append(Update(2, 3, 3)).ok());
  ASSERT_TRUE(wal2.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[2].lsn, 3u);
}

TEST(WalTest, OversizedRecordRejected) {
  MemDisk disk;
  Wal wal(&disk);
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.txn = 1;
  DatabaseObject obj(Oid(1), 1, 1);
  obj.Set(0, Value(std::string(5000, 'x')));
  rec.oid = obj.oid();
  rec.after = std::move(obj);
  EXPECT_EQ(wal.Append(std::move(rec)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, ResetTruncatesButKeepsLsnSequence) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 1)).ok());
  ASSERT_TRUE(wal.Append(Update(1, 2, 2)).ok());
  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_GT(wal.DiskPages(), 0u);
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.DiskPages(), 0u);
  EXPECT_EQ(wal.ReadAll().value().size(), 0u);
  // LSNs continue monotonically across the truncation.
  EXPECT_EQ(wal.Append(Update(2, 3, 3)).value(), 3u);
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].lsn, 3u);
}

TEST(WalTest, CleanFlushDoesNoIo) {
  MemDisk disk;
  Wal wal(&disk);
  ASSERT_TRUE(wal.Append(Update(1, 1, 1)).ok());
  ASSERT_TRUE(wal.Flush().ok());
  const uint64_t writes = disk.writes();
  const uint64_t syncs = disk.syncs();
  EXPECT_EQ(syncs, 1u);
  // Nothing appended since the last flush: flushing again (the Checkpoint
  // path does this on every call) must be free — zero writes, zero syncs.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(disk.writes(), writes);
  EXPECT_EQ(disk.syncs(), syncs);
  // And WaitDurable on an already-durable LSN is equally free.
  ASSERT_TRUE(wal.WaitDurable(wal.durable_lsn()).ok());
  EXPECT_EQ(disk.syncs(), syncs);
}

TEST(WalTest, WaitDurableAdvancesTheDurableHorizon) {
  MemDisk disk;
  Wal wal(&disk);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  Lsn a = wal.Append(Update(1, 1, 1)).value();
  Lsn b = wal.Append(Update(1, 2, 2)).value();
  Lsn c = wal.Append(Update(1, 3, 3)).value();
  // Waiting on the middle LSN makes the whole pending batch durable (the
  // leader packs everything appended so far).
  ASSERT_TRUE(wal.WaitDurable(b).ok());
  EXPECT_GE(wal.durable_lsn(), c);
  EXPECT_EQ(disk.syncs(), 1u);
  ASSERT_TRUE(wal.WaitDurable(a).ok());
  ASSERT_TRUE(wal.WaitDurable(c).ok());
  EXPECT_EQ(disk.syncs(), 1u);  // both were already covered
}

TEST(WalTest, RestartRestoresAppendedBytes) {
  MemDisk disk;
  uint64_t bytes_before = 0;
  {
    Wal wal(&disk);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.Append(Update(1, i, i)).ok());
    }
    ASSERT_TRUE(wal.Flush().ok());
    bytes_before = wal.appended_bytes();
    ASSERT_GT(bytes_before, 0u);
  }
  Wal wal2(&disk);
  EXPECT_EQ(wal2.appended_bytes(), bytes_before);
  EXPECT_EQ(wal2.recovered_records(), 20u);
  EXPECT_EQ(wal2.durable_lsn(), 20u);
}

TEST(WalTest, FailedSyncDropsBatchAndPinsTheError) {
  MemDisk disk;
  Wal wal(&disk);
  Lsn lost = wal.Append(Update(1, 1, 1)).value();
  disk.InjectSyncFailures(1);
  Status st = wal.WaitDurable(lost);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // The batch's LSNs were dropped: later waiters for them must keep seeing
  // the error even after other batches succeed — never a silent OK.
  EXPECT_EQ(wal.WaitDurable(lost).code(), StatusCode::kIOError);
  Lsn fresh = wal.Append(Update(2, 2, 2)).value();
  ASSERT_TRUE(wal.WaitDurable(fresh).ok());
  EXPECT_EQ(wal.WaitDurable(lost).code(), StatusCode::kIOError);
  // Only the fresh record is durable; the dropped one never reaches disk.
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].lsn, fresh);
}

TEST(WalTest, ConcurrentCommittersCoalesceIntoFewFsyncs) {
  MemDisk base;
  SlowSyncDisk disk(&base);
  Wal wal(&disk);
  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        auto lsn = wal.Append(Update(t + 1, t * kRounds + i, i));
        if (!lsn.ok() || !wal.WaitDurable(lsn.value()).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every record made it to disk...
  auto records = Wal::ReadAllFromDisk(&base);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().size(),
            static_cast<size_t>(kThreads * kRounds));
  // ...with far fewer sync barriers than commits: while a leader pays the
  // slow sync, the other 7 threads append and ride the next batch.
  EXPECT_LT(wal.fsyncs(), static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_EQ(wal.fsyncs(), disk.syncs());
}

TEST(WalTest, GroupCommitWindowStillCommitsSingleWriters) {
  MemDisk disk;
  Wal wal(&disk);
  wal.set_group_commit_window_us(200);
  EXPECT_EQ(wal.group_commit_window_us(), 200);
  Lsn lsn = wal.Append(Update(1, 1, 1)).value();
  ASSERT_TRUE(wal.WaitDurable(lsn).ok());
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).value().size(), 1u);
}

TEST(WalTest, CommitAndAbortRecordsCarryNoImage) {
  MemDisk disk;
  Wal wal(&disk);
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 9;
  ASSERT_TRUE(wal.Append(std::move(commit)).ok());
  ASSERT_TRUE(wal.Flush().ok());
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].type, WalRecordType::kCommit);
  EXPECT_EQ(records.value()[0].txn, 9u);
}

TEST(WalTruncateTest, DropsPrefixKeepsSurvivors) {
  MemDisk disk;
  Wal wal(&disk);
  Lsn last = 0;
  for (int i = 1; i <= 10; ++i) last = wal.Append(Update(1, i, i)).value();
  ASSERT_TRUE(wal.WaitDurable(last).ok());
  ASSERT_TRUE(wal.TruncateUpTo(5).ok());
  EXPECT_EQ(wal.truncate_below_lsn(), 5u);

  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 5u);
  EXPECT_EQ(records.value().front().lsn, 6u);
  EXPECT_EQ(records.value().back().lsn, 10u);
  // The in-memory view agrees with the disk view.
  EXPECT_EQ(wal.ReadAll().value().size(), 5u);
}

TEST(WalTruncateTest, RestartAfterTruncationAppendsRecoverably) {
  MemDisk disk;
  {
    Wal wal(&disk);
    Lsn last = 0;
    for (int i = 1; i <= 8; ++i) last = wal.Append(Update(1, i, i)).value();
    ASSERT_TRUE(wal.WaitDurable(last).ok());
    ASSERT_TRUE(wal.TruncateUpTo(6).ok());
  }
  {
    // Restart on the truncated disk: LSNs continue, new appends must land
    // where the recovery scan can see them (not past the terminator page).
    Wal wal(&disk);
    EXPECT_EQ(wal.next_lsn(), 9u);
    Lsn lsn = wal.Append(Update(2, 100, 100)).value();
    EXPECT_EQ(lsn, 9u);
    ASSERT_TRUE(wal.WaitDurable(lsn).ok());
  }
  auto records = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[0].lsn, 7u);
  EXPECT_EQ(records.value()[1].lsn, 8u);
  EXPECT_EQ(records.value()[2].lsn, 9u);
}

TEST(WalTruncateTest, TruncatingEverythingPreservesLsnSequence) {
  MemDisk disk;
  {
    Wal wal(&disk);
    Lsn last = 0;
    for (int i = 1; i <= 4; ++i) last = wal.Append(Update(1, i, i)).value();
    ASSERT_TRUE(wal.WaitDurable(last).ok());
    ASSERT_TRUE(wal.TruncateUpTo(last).ok());
    EXPECT_TRUE(Wal::ReadAllFromDisk(&disk).value().empty());
  }
  Wal wal(&disk);
  EXPECT_EQ(wal.next_lsn(), 5u);  // no reuse of truncated LSNs
}

TEST(WalTruncateTest, RejectsNonDurableBoundAndResetsByteCounter) {
  MemDisk disk;
  Wal wal(&disk);
  Lsn l1 = wal.Append(Update(1, 1, 1)).value();
  Lsn l2 = wal.Append(Update(1, 2, 2)).value();
  EXPECT_EQ(wal.TruncateUpTo(l2 + 1).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(wal.WaitDurable(l2).ok());
  EXPECT_GT(wal.bytes_since_truncate(), 0u);
  Wal::TruncateStats stats;
  ASSERT_TRUE(wal.TruncateUpTo(l1, &stats).ok());
  EXPECT_GT(stats.bytes_truncated, 0u);
  EXPECT_GT(stats.pages_written, 0u);
  // Byte-trigger accounting restarts from the truncation point.
  EXPECT_LT(wal.bytes_since_truncate(), stats.bytes_truncated + 1);
}

TEST(WalTruncateTest, RepeatedTruncationsKeepLogScannable) {
  MemDisk disk;
  Wal wal(&disk);
  Lsn last = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 40; ++i) {
      last = wal.Append(Update(1, round * 100 + i, i)).value();
    }
    ASSERT_TRUE(wal.WaitDurable(last).ok());
    ASSERT_TRUE(wal.TruncateUpTo(last - 3).ok());
    auto records = Wal::ReadAllFromDisk(&disk);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.value().size(), 3u);
    EXPECT_EQ(records.value().back().lsn, last);
  }
}

TEST(WalCorruptionTest, BitFlippedPageCutsScanWithoutCrashing) {
  MemDisk disk;
  Wal wal(&disk);
  Lsn last = 0;
  for (int i = 1; i <= 400; ++i) last = wal.Append(Update(1, i, i)).value();
  ASSERT_TRUE(wal.WaitDurable(last).ok());
  auto all = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 400u);
  ASSERT_GE(disk.PageCount(), 4u) << "need several record pages to corrupt one";

  // Flip a payload bit in the middle of the record region (page 0 is the
  // header; records start at page 1).
  PageId victim = 1 + (disk.PageCount() - 1) / 2;
  disk.CorruptPage(victim, 200, 0x10);

  auto cut = Wal::ReadAllFromDisk(&disk);
  ASSERT_TRUE(cut.ok());
  EXPECT_LT(cut.value().size(), 400u);
  // Everything before the corrupted page survives, in order.
  for (size_t i = 0; i < cut.value().size(); ++i) {
    EXPECT_EQ(cut.value()[i].lsn, i + 1);
  }
}

TEST(WalCorruptionTest, CorruptHeaderPageIsAnError) {
  MemDisk disk;
  {
    Wal wal(&disk);
    Lsn lsn = wal.Append(Update(1, 1, 1)).value();
    ASSERT_TRUE(wal.WaitDurable(lsn).ok());
  }
  disk.CorruptPage(0, 100, 0x01);
  EXPECT_EQ(Wal::ReadAllFromDisk(&disk).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace idba
