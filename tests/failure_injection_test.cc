// Failure injection: disk errors must surface as clean Status failures at
// every layer — no crashes, no partial silent state. Plus RefreshAll (the
// manual-refresh API that brings a passive snapshot current).

#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "txn/recovery.h"
#include "txn/txn_manager.h"

namespace idba {
namespace {

DatabaseObject MakeObj(Oid oid, int64_t v) {
  DatabaseObject obj(oid, 1, 1);
  obj.Set(0, Value(v));
  return obj;
}

TEST(FailureInjectionTest, WalWriteFailureFailsCommitCleanly) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 16});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  TxnId t = mgr.Begin();
  Oid oid = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t, MakeObj(oid, 1)).ok());
  wal_disk.InjectWriteFailures(1);  // the commit's log force will fail
  auto commit = mgr.Commit(t);
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kIOError);
  // The write never reached the heap (commit applies only after the force).
  EXPECT_FALSE(heap->Contains(oid));
  // The failed transaction is aborted, not left dangling.
  EXPECT_EQ(mgr.GetState(t), TxnState::kAborted);
  // Regression: the failed commit used to leak its X locks, hanging every
  // later transaction touching the same OIDs forever. The OID must be
  // immediately lockable — and committable — by someone else.
  TxnId t2 = mgr.Begin();
  ASSERT_TRUE(mgr.Insert(t2, MakeObj(oid, 2)).ok());
  ASSERT_TRUE(mgr.Commit(t2).ok());
  EXPECT_TRUE(heap->Contains(oid));
}

TEST(FailureInjectionTest, WalSyncFailureFailsCommitCleanlyAndReleasesLocks) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 16});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  TxnId t = mgr.Begin();
  Oid oid = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t, MakeObj(oid, 1)).ok());
  wal_disk.InjectSyncFailures(1);  // pages land, the sync barrier fails
  auto commit = mgr.Commit(t);
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(heap->Contains(oid));
  EXPECT_EQ(mgr.GetState(t), TxnState::kAborted);

  // A second transaction can lock the same OID and commit durably.
  TxnId t2 = mgr.Begin();
  Oid oid2 = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t2, MakeObj(oid, 2)).ok());
  ASSERT_TRUE(mgr.Insert(t2, MakeObj(oid2, 3)).ok());
  ASSERT_TRUE(mgr.Commit(t2).ok());

  // Recovery never resurrects the failed transaction: its commit record may
  // have hit the disk (only the sync failed), but the abort record appended
  // by the failure path cancels it. Only t2's effects replay.
  auto disk_copy = wal_disk.Clone();
  MemDisk data2;
  BufferPool pool2(&data2, {.frame_count = 16});
  auto heap2 = std::move(HeapStore::Open(&pool2, 0).value());
  ASSERT_TRUE(RecoverFromWal(disk_copy.get(), heap2.get()).ok());
  ASSERT_TRUE(heap2->Contains(oid));
  EXPECT_EQ(heap2->Read(oid).value().Get(0), Value(int64_t(2)));
  EXPECT_TRUE(heap2->Contains(oid2));
}

TEST(FailureInjectionTest, BufferPoolEvictionWriteFailureSurfaces) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 1});
  {
    auto g = pool.NewPage(0);
    ASSERT_TRUE(g.ok());
    g.value().MarkDirty();
  }
  disk.InjectWriteFailures(1);
  // Fetching another page must evict + write back page 0, which fails.
  auto fetch = pool.FetchPage(1);
  EXPECT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kIOError);
  // Once the disk recovers, the pool keeps working.
  EXPECT_TRUE(pool.FetchPage(1).ok());
}

TEST(FailureInjectionTest, HeapReadFailureSurfacesThroughServer) {
  DatabaseServer server;
  ClassId cls = server.schema().DefineClass("Item").value();
  ASSERT_TRUE(server.schema().AddAttribute(cls, "V", ValueType::kInt).ok());
  TxnId t = server.Begin(0);
  Oid oid = server.AllocateOid();
  DatabaseObject obj(oid, cls, 1);
  obj.Set(0, Value(int64_t(1)));
  ASSERT_TRUE(server.Insert(0, t, std::move(obj), nullptr).ok());
  ASSERT_TRUE(server.Commit(0, t, nullptr).ok());
  ASSERT_TRUE(server.Checkpoint().ok());
  server.buffer_pool().DropAllNoFlush();

  // The server was built over its own MemDisks; we cannot reach them here,
  // so exercise the path at heap level with a fresh stack instead.
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 4});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  ASSERT_TRUE(heap->Insert(MakeObj(Oid(1), 5)).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.DropAllNoFlush();
  disk.InjectReadFailures(1);
  EXPECT_EQ(heap->Read(Oid(1)).status().code(), StatusCode::kIOError);
  EXPECT_TRUE(heap->Read(Oid(1)).ok());  // transient: next read succeeds
}

class RefreshAllTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 6;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(RefreshAllTest, BringsPassiveSnapshotCurrent) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* snap = viewer->CreateView("snapshot", {.subscribe = false});
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(snap->PopulateFromClass(dc).ok());

  const SchemaCatalog& cat = deployment_->server().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, db_.link_oids[0]).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.99)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->client().Commit(t).ok());

  EXPECT_EQ(snap->CountStaleObjects(), 1u);
  auto refreshed = snap->RefreshAll();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.value(), db_.link_oids.size());
  EXPECT_EQ(snap->CountStaleObjects(), 0u);
  for (DisplayObject* dob : snap->display_objects()) {
    if (dob->sources()[0] == db_.link_oids[0]) {
      EXPECT_EQ(dob->Get("Utilization").value(), Value(0.99));
    }
  }
}

TEST_F(RefreshAllTest, CostsFullViewTrafficUnlikeNotify) {
  // The quantitative §2.3 point as an API-level check: RefreshAll pays a
  // fetch per displayed object, notify pays only for what changed.
  auto viewer = deployment_->NewSession(100);
  ActiveView* snap = viewer->CreateView("snapshot", {.subscribe = false});
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(snap->PopulateFromClass(dc).ok());
  uint64_t rpcs_before = viewer->client().rpcs_issued();
  ASSERT_TRUE(snap->RefreshAll().ok());
  EXPECT_GE(viewer->client().rpcs_issued() - rpcs_before, db_.link_oids.size());
}

}  // namespace
}  // namespace idba
