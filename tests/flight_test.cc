// Flight-recorder tests (obs/flight.h): event recording and wrap, dump
// parseability, concurrent record-vs-dump safety, WAL instrumentation
// feeding the ring, and the crash handler end-to-end — a forked child
// SIGABRTs and the parent reads its last WAL flush and frame events back
// out of the dump file.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/health.h"
#include "storage/disk.h"
#include "storage/wal.h"

namespace idba {
namespace {

std::string TempPath(const char* tag) {
  const char* dir = ::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/idba_flight_test_" + tag + "_" +
         std::to_string(::getpid()) + ".dump";
}

TEST(FlightRecorderTest, RecordedEventsAppearInDump) {
  obs::EnsureThisThreadSlot();
  obs::FlightRecord(obs::FlightType::kFrameIn, 7, 1);
  obs::FlightRecord(obs::FlightType::kLockWait, 4242, 1500);
  const std::string dump = obs::FlightDumpString();
  EXPECT_NE(dump.find("flightdump v1"), std::string::npos);
  EXPECT_NE(dump.find("type=frame.in a=7 b=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=lock.wait a=4242 b=1500"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("end"), std::string::npos);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestEvents) {
  obs::EnsureThisThreadSlot();
  for (uint64_t i = 0; i < 2 * obs::kFlightRingEvents; ++i) {
    obs::FlightRecord(obs::FlightType::kStrandRun, /*a=*/i, /*b=*/0);
  }
  const std::string dump = obs::FlightDumpString();
  // The newest event survives; the oldest was overwritten by the wrap.
  const uint64_t newest = 2 * obs::kFlightRingEvents - 1;
  EXPECT_NE(dump.find("type=strand.run a=" + std::to_string(newest)),
            std::string::npos);
  EXPECT_EQ(dump.find("type=strand.run a=0 "), std::string::npos);
}

TEST(FlightRecorderTest, DumpIsLineParseable) {
  obs::EnsureThisThreadSlot();
  obs::FlightRecord(obs::FlightType::kOverload, 3, 2);
  std::istringstream in(obs::FlightDumpString());
  std::string line;
  bool saw_thread = false;
  bool saw_event = false;
  while (std::getline(in, line)) {
    if (line.rfind("thread ", 0) == 0) {
      saw_thread = true;
      EXPECT_NE(line.find("slot="), std::string::npos) << line;
      EXPECT_NE(line.find("role="), std::string::npos) << line;
      EXPECT_NE(line.find("tid="), std::string::npos) << line;
    } else if (line.rfind("event ", 0) == 0) {
      saw_event = true;
      EXPECT_NE(line.find("t_us="), std::string::npos) << line;
      EXPECT_NE(line.find("type="), std::string::npos) << line;
      EXPECT_NE(line.find("a="), std::string::npos) << line;
      EXPECT_NE(line.find("b="), std::string::npos) << line;
    } else {
      EXPECT_TRUE(line.rfind("flightdump v1", 0) == 0 || line == "end")
          << "unexpected line: " << line;
    }
  }
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_event);
}

TEST(FlightRecorderTest, ConcurrentRecordAndDump) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&stop, w] {
      obs::RegisterThisThread(("flight-writer-" + std::to_string(w)).c_str());
      uint64_t i = 0;
      while (!stop.load()) {
        obs::FlightRecord(obs::FlightType::kFrameOut, static_cast<uint64_t>(w),
                          i++);
      }
      obs::UnregisterThisThread();
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string dump = obs::FlightDumpString();
    EXPECT_NE(dump.find("flightdump v1"), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(FlightRecorderTest, WalFlushFeedsRing) {
  obs::EnsureThisThreadSlot();
  MemDisk disk;
  Wal wal(&disk);
  WalRecord rec;
  rec.type = WalRecordType::kBegin;
  rec.txn = 1;
  auto lsn = wal.Append(rec);
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(wal.WaitDurable(lsn.value()).ok());
  const std::string dump = obs::FlightDumpString();
  EXPECT_NE(dump.find("type=wal.append"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=wal.flush_begin"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=wal.flush_end"), std::string::npos) << dump;
}

// The headline acceptance test: a child process records traffic-shaped
// events, does a real WAL append+flush, installs the crash handler, and
// dies on SIGABRT. The parent then parses the dump file the handler wrote.
// Fork keeps the child single-threaded (async-signal-safe territory) and
// keeps the abort out of this process, where sanitizers would intercept it.
TEST(FlightRecorderTest, CrashHandlerWritesParseableDump) {
  const std::string path = TempPath("crash");
  ::unlink(path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. _exit on any failure path; only abort() should end us.
    obs::InstallCrashHandler(path);
    obs::RegisterThisThread("crash-child");
    obs::FlightRecord(obs::FlightType::kFrameIn, 11, 1);
    MemDisk disk;
    Wal wal(&disk);
    WalRecord rec;
    rec.type = WalRecordType::kCommit;
    rec.txn = 9;
    auto lsn = wal.Append(rec);
    if (!lsn.ok() || !wal.WaitDurable(lsn.value()).ok()) ::_exit(97);
    obs::FlightRecord(obs::FlightType::kFrameOut, 11, 2);
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with "
                                   << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler wrote no dump at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();

  EXPECT_NE(dump.find("flightdump v1"), std::string::npos);
  EXPECT_NE(dump.find("signal=" + std::to_string(SIGABRT)), std::string::npos)
      << dump.substr(0, 200);
  EXPECT_NE(dump.find("role=crash-child"), std::string::npos);
  // The last WAL flush and the frame traffic around it survived the crash.
  EXPECT_NE(dump.find("type=wal.flush_end"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=frame.in a=11 b=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=frame.out a=11 b=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("end"), std::string::npos);

  ::unlink(path.c_str());
}

}  // namespace
}  // namespace idba
