// Kill-loop chaos harness: a real idba_serve process under a live
// workload, SIGKILLed at seeded random points mid-commit, restarted on
// the same data directory. After every restart the harness asserts the
// full crash-survivability contract end to end:
//
//   - every acknowledged commit is still present with the right value;
//   - no aborted (or never-committed) transaction is resurrected;
//   - commits whose acknowledgement was lost to the crash are either
//     fully present or fully absent — never partial;
//   - no page-checksum failure is ever observed;
//   - a subscriber's display locks survive via session recovery: after
//     the final restart, an update to a watched object still produces a
//     notification on the reconnected subscriber;
//   - the consistency auditor stays green in STRICT mode on both sides:
//     the server runs --audit=strict (any fan-out vtime regression aborts
//     it, which the harness would see as a failed restart/scan), and the
//     client process audits its own notify stream, with Reconnect()
//     resetting watermarks so post-restart vtimes don't false-positive.
//
// The server binary comes from IDBA_SERVE_BIN (injected by CMake); the
// cycle count and seed are overridable via IDBA_CHAOS_CYCLES and
// IDBA_CHAOS_SEED so CI can run longer sweeps than the default.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "net/remote_client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "nms/network_model.h"
#include "objectmodel/object.h"
#include "objectmodel/oid.h"
#include "obs/audit.h"
#include "tools/admin_call.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoll(v) : fallback;
}

/// Spins (real time) until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

/// One idba_serve child process. Start() parses the startup banner for
/// the bound port and the recovery line for the replay size, so the
/// harness can assert recovery stays bounded as history grows.
class ServerProcess {
 public:
  ~ServerProcess() { Kill(); }

  bool Start(const std::string& bin, const std::string& data_dir,
             uint16_t port) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::dup2(fds[1], STDERR_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<std::string> args = {bin,        "--port",
                                       std::to_string(port), "--data-dir",
                                       data_dir,   "--checkpoint-interval-ms",
                                       "50",       "--audit",
                                       "strict"};
      // CI sets IDBA_CHAOS_FLIGHT_DUMP so a server that dies on its own
      // (not by our SIGKILL) leaves a flight-recorder dump to upload.
      if (const char* dump = std::getenv("IDBA_CHAOS_FLIGHT_DUMP")) {
        args.push_back("--flight-dump");
        args.push_back(dump);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(bin.c_str(), argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    out_ = fds[0];
    // The banner ("idba_serve listening on host:port") is flushed right
    // after bind; the recovery line precedes it on the same stream. If
    // the child dies first (e.g. port still in TIME_WAIT), read sees EOF.
    std::string buf;
    char tmp[512];
    while (buf.find("listening on") == std::string::npos) {
      ssize_t n = ::read(out_, tmp, sizeof(tmp));
      if (n <= 0) {
        Kill();
        return false;
      }
      buf.append(tmp, static_cast<size_t>(n));
    }
    size_t at = buf.find("listening on ");
    size_t colon = buf.find(':', at);
    if (colon == std::string::npos) return false;
    port_ = static_cast<uint16_t>(std::atoi(buf.c_str() + colon + 1));
    records_scanned_ = 0;
    size_t rec = buf.find("records_scanned=");
    if (rec != std::string::npos) {
      records_scanned_ =
          std::atoll(buf.c_str() + rec + std::strlen("records_scanned="));
    }
    return port_ != 0;
  }

  void Kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_ >= 0) {
      ::close(out_);
      out_ = -1;
    }
  }

  uint16_t port() const { return port_; }
  int64_t records_scanned() const { return records_scanned_; }

 private:
  pid_t pid_ = -1;
  int out_ = -1;
  uint16_t port_ = 0;
  int64_t records_scanned_ = 0;
};

class CrashChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("IDBA_SERVE_BIN");
    if (bin == nullptr || ::access(bin, X_OK) != 0) {
      GTEST_SKIP() << "IDBA_SERVE_BIN not set or not executable; run via "
                      "ctest (CMake injects the idba_serve path)";
    }
    bin_ = bin;
    dir_ = testing::TempDir() + "idba_chaos_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::remove((dir_ + "/data.idb").c_str());
    std::remove((dir_ + "/wal.idb").c_str());
    // This process is the subscriber side: audit its notify stream in
    // strict mode too (a vtime regression crashes the test, loudly).
    obs::GlobalAuditor().ResetForTest();
    obs::GlobalAuditor().SetMode(obs::AuditMode::kStrict);
  }

  void TearDown() override {
    server_.Kill();
    obs::GlobalAuditor().ResetForTest();
  }

  std::unique_ptr<RemoteDatabaseClient> Connect(ClientId id) {
    RemoteClientOptions opts;
    opts.rpc_deadline_ms = 5000;
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto client =
          RemoteDatabaseClient::Connect("127.0.0.1", server_.port(), id, opts);
      if (client.ok()) return std::move(client).value();
      std::this_thread::sleep_for(20ms);
    }
    return nullptr;
  }

  /// Schema is not persisted: every restarted server needs the DDL re-run.
  /// Identical definition order yields identical ClassIds, so objects
  /// recovered from the WAL stay interpretable.
  ClassId DefineSchema(RemoteDatabaseClient& client) {
    Result<ClassId> cls = client.DefineClass("ChaosItem");
    if (!cls.ok()) return 0;
    if (!client.AddAttribute(cls.value(), "Value", ValueType::kInt).ok())
      return 0;
    return cls.value();
  }

  /// SIGKILL, restart on the same data dir + port, and re-establish both
  /// client sessions (writer first so the schema exists before the
  /// subscriber's Hello snapshots the catalog).
  void RestartAndRecover(RemoteDatabaseClient* writer,
                         RemoteDatabaseClient* subscriber, ClassId cls) {
    server_.Kill();
    uint16_t port = server_.port();
    bool up = false;
    for (int attempt = 0; attempt < 100 && !up; ++attempt) {
      up = server_.Start(bin_, dir_, port);
      if (!up) std::this_thread::sleep_for(50ms);
    }
    ASSERT_TRUE(up) << "server failed to restart on port " << port;
    ASSERT_TRUE(WaitFor([&] { return !writer->connected(); }));
    ASSERT_TRUE(writer->Reconnect(10).ok());
    ASSERT_EQ(DefineSchema(*writer), cls)
        << "schema redefinition diverged across restart";
    if (subscriber != nullptr) {
      ASSERT_TRUE(WaitFor([&] { return !subscriber->connected(); }));
      ASSERT_TRUE(subscriber->Reconnect(10).ok());
    }
  }

  /// Server-side auditor field scraped from the AUDIT admin RPC's JSON
  /// report (no Hello needed; shed-exempt).
  int64_t AuditField(const std::string& key) {
    auto sock = Socket::ConnectTo("127.0.0.1", server_.port(),
                                  /*connect_timeout_ms=*/5000);
    if (!sock.ok()) return -1;
    std::vector<uint8_t> body;
    std::string report;
    if (!tools::AdminCall(sock.value(), wire::Method::kAudit, body, &report)
             .ok()) {
      return -1;
    }
    size_t at = report.find("\"" + key + "\":");
    if (at == std::string::npos) return -1;
    return std::atoll(report.c_str() + at + key.size() + 3);
  }

  /// Counter value scraped from the admin STATS JSON (no Hello needed).
  int64_t StatsCounter(const std::string& key) {
    auto sock = Socket::ConnectTo("127.0.0.1", server_.port(),
                                  /*connect_timeout_ms=*/5000);
    if (!sock.ok()) return -1;
    std::vector<uint8_t> body;
    Encoder enc(&body);
    enc.PutU8(0);  // format: json
    std::string stats;
    if (!tools::AdminCall(sock.value(), wire::Method::kStats, body, &stats)
             .ok()) {
      return -1;
    }
    size_t at = stats.find("\"" + key + "\":");
    if (at == std::string::npos) return -1;
    return std::atoll(stats.c_str() + at + key.size() + 3);
  }

  std::string bin_;
  std::string dir_;
  ServerProcess server_;
};

TEST_F(CrashChaosTest, KillLoopLosesNoCommittedWork) {
  const int cycles = static_cast<int>(EnvInt("IDBA_CHAOS_CYCLES", 25));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("IDBA_CHAOS_SEED", 1996));
  std::mt19937_64 rng(seed);

  ASSERT_TRUE(server_.Start(bin_, dir_, 0));
  auto writer = Connect(100);
  ASSERT_NE(writer, nullptr);
  ClassId cls = DefineSchema(*writer);
  ASSERT_NE(cls, 0);

  // The acked-commit ledger: what the server MUST still have after any
  // number of crashes. `unknown` holds commits whose reply was lost to a
  // kill (possibly applied); `uncommitted` holds aborted or abandoned
  // transactions (must never surface).
  std::map<uint64_t, int64_t> committed;
  std::vector<std::pair<uint64_t, int64_t>> unknown;
  std::vector<uint64_t> uncommitted;
  // Updates whose ack was lost: the object must hold the old OR the new
  // value after recovery — anything else is a torn write.
  std::vector<std::tuple<uint64_t, int64_t, int64_t>> unknown_updates;
  int64_t next_value = 1;

  auto commit_insert = [&](int64_t value) -> Oid {
    Result<Oid> oid = writer->NewOid();
    if (!oid.ok()) return kNullOid;
    Result<TxnId> txn = writer->BeginTxn();
    if (!txn.ok()) {
      uncommitted.push_back(oid.value().value);
      return kNullOid;
    }
    DatabaseObject obj = NewObject(writer->schema(), cls, oid.value());
    EXPECT_TRUE(
        obj.SetByName(writer->schema(), "Value", Value(value)).ok());
    if (!writer->Insert(txn.value(), obj).ok()) {
      uncommitted.push_back(oid.value().value);
      return kNullOid;
    }
    if (!writer->Commit(txn.value()).ok()) {
      unknown.push_back({oid.value().value, value});
      return kNullOid;
    }
    committed[oid.value().value] = value;
    return oid.value();
  };

  // Cycle 0 (no kill): seed watched objects and a subscriber holding
  // display locks on them — the session-recovery payload every later
  // restart must replay.
  std::vector<Oid> watched;
  for (int i = 0; i < 4; ++i) {
    Oid oid = commit_insert(next_value);
    ASSERT_FALSE(oid.IsNull());
    watched.push_back(oid);
    ++next_value;
  }
  auto subscriber = Connect(200);
  ASSERT_NE(subscriber, nullptr);
  ASSERT_TRUE(
      subscriber->LockBatch(200, watched, subscriber->clock().Now()).ok());
  ASSERT_EQ(subscriber->held_display_locks(), watched.size());

  int64_t total_commits_acked = 0;
  for (int cycle = 1; cycle <= cycles; ++cycle) {
    // Arm a seeded kill somewhere inside the write burst.
    const int64_t kill_after_ms = 15 + static_cast<int64_t>(rng() % 120);
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
      server_.Kill();
    });

    // Write until the crash interrupts us (capped so ledger verification
    // stays linear in cycles). Every 5th transaction aborts on purpose;
    // every 7th is a read-modify-write on a display-locked object, so
    // the DLM notify fan-out is live when the kill lands.
    size_t committed_before = committed.size();
    for (int op = 1; op <= 120 && writer->connected(); ++op) {
      if (op % 7 == 0) {
        Oid target = watched[rng() % watched.size()];
        int64_t old_value = committed[target.value];
        Result<TxnId> txn = writer->BeginTxn();
        if (!txn.ok()) break;
        Result<DatabaseObject> obj = writer->Read(txn.value(), target);
        if (!obj.ok()) break;
        DatabaseObject updated = std::move(obj).value();
        EXPECT_TRUE(updated
                        .SetByName(writer->schema(), "Value",
                                   Value(next_value))
                        .ok());
        if (!writer->Write(txn.value(), std::move(updated)).ok()) break;
        if (writer->Commit(txn.value()).ok()) {
          committed[target.value] = next_value;
        } else {
          unknown_updates.emplace_back(target.value, old_value, next_value);
        }
      } else if (op % 5 == 0) {
        Result<Oid> oid = writer->NewOid();
        if (!oid.ok()) break;
        Result<TxnId> txn = writer->BeginTxn();
        if (!txn.ok()) {
          uncommitted.push_back(oid.value().value);
          break;
        }
        DatabaseObject obj = NewObject(writer->schema(), cls, oid.value());
        EXPECT_TRUE(
            obj.SetByName(writer->schema(), "Value", Value(next_value)).ok());
        uncommitted.push_back(oid.value().value);
        if (writer->Insert(txn.value(), obj).ok()) {
          (void)writer->Abort(txn.value());  // crash may beat the abort: both
                                             // ways the txn never committed
        }
      } else {
        if (commit_insert(next_value).IsNull() && !writer->connected()) break;
      }
      ++next_value;
    }
    // If the cap was hit before the kill fired, idle until it does.
    while (writer->connected()) std::this_thread::sleep_for(2ms);
    killer.join();
    total_commits_acked +=
        static_cast<int64_t>(committed.size() - committed_before);

    RestartAndRecover(writer.get(), subscriber.get(), cls);

    // One scan gives the server's complete post-recovery view of the
    // class; verify the entire ledger against it.
    Result<std::vector<DatabaseObject>> scan = writer->ScanClass(cls);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    std::map<uint64_t, int64_t> present;
    for (const DatabaseObject& obj : scan.value()) {
      Result<Value> v = obj.GetByName(writer->schema(), "Value");
      ASSERT_TRUE(v.ok());
      present[obj.oid().value] = v.value().AsInt();
    }
    // Lost-ack commits: applied-or-absent, never partial or mangled.
    for (const auto& [oid, value] : unknown) {
      auto it = present.find(oid);
      if (it != present.end()) {
        EXPECT_EQ(it->second, value)
            << "cycle " << cycle << ": oid " << oid
            << " recovered with the wrong value";
        committed[oid] = value;
      }
    }
    unknown.clear();
    for (const auto& [oid, old_value, new_value] : unknown_updates) {
      auto it = present.find(oid);
      ASSERT_NE(it, present.end())
          << "cycle " << cycle << ": updated oid " << oid << " vanished";
      if (it->second == new_value) {
        committed[oid] = new_value;  // the lost-ack update did apply
      } else {
        EXPECT_EQ(it->second, committed[oid])
            << "cycle " << cycle << ": oid " << oid
            << " holds neither the old nor the attempted value";
      }
    }
    unknown_updates.clear();
    // Aborted / never-committed transactions must not be resurrected.
    // (Checked only on the restart right after they ran: recovery reseeds
    // the oid allocator from surviving objects, so an oid burned by an
    // aborted transaction is legitimately reused by later cycles.)
    for (uint64_t oid : uncommitted) {
      EXPECT_EQ(present.count(oid), 0u)
          << "cycle " << cycle << ": aborted txn resurrected as oid " << oid;
    }
    uncommitted.clear();
    // Exactly the acked commits survive — nothing lost, nothing invented.
    EXPECT_EQ(present.size(), committed.size()) << "cycle " << cycle;
    for (const auto& [oid, value] : committed) {
      auto it = present.find(oid);
      ASSERT_NE(it, present.end())
          << "cycle " << cycle << ": lost committed oid " << oid;
      EXPECT_EQ(it->second, value) << "cycle " << cycle << ": oid " << oid;
    }
    // Checksums validated on every page read during recovery and scans.
    EXPECT_EQ(StatsCounter("checksum_failures"), 0) << "cycle " << cycle;
  }
  ASSERT_GT(total_commits_acked, cycles)
      << "workload too slow to exercise the kill loop";

  // Session recovery end to end: the subscriber's display locks were
  // replayed across every restart, so an update to a watched object must
  // still notify it — and both sides must agree on the value.
  ASSERT_EQ(subscriber->held_display_locks(), watched.size());
  uint64_t notified_before = subscriber->notifications_received();
  const int64_t final_value = next_value + 1000000;
  {
    Result<TxnId> txn = writer->BeginTxn();
    ASSERT_TRUE(txn.ok());
    Result<DatabaseObject> obj = writer->Read(txn.value(), watched[0]);
    ASSERT_TRUE(obj.ok()) << obj.status().ToString();
    DatabaseObject updated = std::move(obj).value();
    ASSERT_TRUE(
        updated.SetByName(writer->schema(), "Value", Value(final_value)).ok());
    ASSERT_TRUE(writer->Write(txn.value(), std::move(updated)).ok());
    ASSERT_TRUE(writer->Commit(txn.value()).ok());
    committed[watched[0].value] = final_value;
  }
  EXPECT_TRUE(WaitFor(
      [&] { return subscriber->notifications_received() > notified_before; }))
      << "display-lock replay lost: no notification after " << cycles
      << " restarts";
  Result<DatabaseObject> seen = subscriber->ReadCurrent(watched[0]);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(seen.value().GetByName(subscriber->schema(), "Value").value(),
            Value(final_value));

  // Server-side strict audit: this server just fanned that update out, so
  // its auditor demonstrably ran — and found nothing.
  EXPECT_GT(AuditField("checks_total"), 0);
  EXPECT_EQ(AuditField("violations_total"), 0);

  // Bounded recovery: give the background checkpointer (50 ms interval)
  // time to truncate, then crash an idle server. Replay must be a handful
  // of records regardless of how much history the loop accumulated.
  std::this_thread::sleep_for(300ms);
  RestartAndRecover(writer.get(), subscriber.get(), cls);
  EXPECT_LE(server_.records_scanned(), 64)
      << "checkpointing failed to bound recovery";
  EXPECT_EQ(StatsCounter("checksum_failures"), 0);
  Result<std::vector<DatabaseObject>> final_scan = writer->ScanClass(cls);
  ASSERT_TRUE(final_scan.ok());
  EXPECT_EQ(final_scan.value().size(), committed.size());

  // Client-side strict audit: this process watched every notification it
  // received across all restarts (a violation would have aborted us long
  // before this line — the counters make the pass explicit).
  EXPECT_GT(obs::GlobalAuditor().checks_total(), 0u)
      << "chaos loop never exercised the client-side auditor";
  EXPECT_EQ(obs::GlobalAuditor().violations_total(), 0u);
}

}  // namespace
}  // namespace idba
