// Unit tests for the event-driven transport core: EventLoop (epoll +
// eventfd wakeups, posted tasks, ticks), Conn (incremental frame decode,
// bounded writev-drained write queue, watermark backpressure) and SharedBuf
// (single-serialization fan-out bodies). Conn tests run over socketpair()
// so both ends are local and deterministic.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/conn.h"
#include "net/event_loop.h"
#include "net/shared_buf.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

TEST(EventLoopTest, PostRunsOnLoopThreadAndWakes) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  // The loop is blocked in epoll_wait with no fds and no timeout; only the
  // eventfd wakeup can deliver this task.
  loop.Post([&] {
    on_loop.store(loop.InLoopThread());
    ran.store(true);
  });
  EXPECT_TRUE(WaitFor([&] { return ran.load(); }));
  EXPECT_TRUE(on_loop.load());
  loop.Stop();
}

TEST(EventLoopTest, PostAfterStopRunsInline) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  loop.Stop();
  bool ran = false;
  loop.Post([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, TickFires) {
  EventLoop::Options opts;
  opts.tick_interval_ms = 10;
  std::atomic<int> ticks{0};
  opts.on_tick = [&] { ticks.fetch_add(1); };
  EventLoop loop(opts);
  ASSERT_TRUE(loop.Start().ok());
  EXPECT_TRUE(WaitFor([&] { return ticks.load() >= 3; }));
  loop.Stop();
}

TEST(EventLoopTest, AddBeforeStartFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.Add(0, 0, nullptr).ok());
}

// --- Conn -----------------------------------------------------------------

/// Records frames and lifecycle events from a Conn under test.
class RecordingHandler : public Conn::Handler {
 public:
  void OnFrame(Conn*, const wire::FrameHeader& header,
               std::vector<uint8_t> payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back({header, std::move(payload)});
  }
  void OnWriteDrained(Conn*) override { drained_.fetch_add(1); }
  void OnClosed(Conn*) override { closed_.store(true); }

  size_t frame_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }
  std::pair<wire::FrameHeader, std::vector<uint8_t>> frame(size_t i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.at(i);
  }
  int drained() const { return drained_.load(); }
  bool closed() const { return closed_.load(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<wire::FrameHeader, std::vector<uint8_t>>> frames_;
  std::atomic<int> drained_{0};
  std::atomic<bool> closed_{false};
};

class ConnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(loop_.Start().ok());
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    conn_fd_ = fds[0];
    peer_fd_ = fds[1];
  }

  void MakeConn(Conn::Options opts = {}) {
    conn_ = std::make_shared<Conn>(&loop_, Socket(conn_fd_), &handler_, opts);
    conn_fd_ = -1;  // now owned by conn_
    ASSERT_TRUE(conn_->Register().ok());
  }

  void TearDown() override {
    if (conn_) conn_->Close();
    loop_.Stop();
    conn_.reset();
    if (peer_fd_ >= 0) ::close(peer_fd_);
    if (conn_fd_ >= 0) ::close(conn_fd_);
  }

  /// Writes raw bytes into the peer end (blocking; the test side).
  void PeerSend(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t rc = ::send(peer_fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(rc, 0);
      off += static_cast<size_t>(rc);
    }
  }

  /// Reads exactly n bytes from the peer end.
  std::vector<uint8_t> PeerRecv(size_t n) {
    std::vector<uint8_t> out(n);
    size_t off = 0;
    while (off < n) {
      ssize_t rc = ::recv(peer_fd_, out.data() + off, n - off, 0);
      EXPECT_GT(rc, 0);
      if (rc <= 0) break;
      off += static_cast<size_t>(rc);
    }
    return out;
  }

  static std::vector<uint8_t> EncodeFrame(wire::FrameType type, uint64_t seq,
                                          const std::vector<uint8_t>& payload) {
    wire::FrameHeader header;
    header.payload_len = static_cast<uint32_t>(payload.size());
    header.type = type;
    header.seq = seq;
    std::vector<uint8_t> out(wire::kHeaderBytes + payload.size());
    wire::EncodeHeader(header, out.data());
    std::copy(payload.begin(), payload.end(),
              out.begin() + wire::kHeaderBytes);
    return out;
  }

  EventLoop loop_;
  RecordingHandler handler_;
  std::shared_ptr<Conn> conn_;
  int conn_fd_ = -1;
  int peer_fd_ = -1;
};

TEST_F(ConnTest, DecodesFrameSplitAcrossArbitraryChunks) {
  MakeConn();
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes =
      EncodeFrame(wire::FrameType::kRequest, 42, payload);
  // Dribble the frame one byte at a time: the decoder must accumulate
  // partial headers and partial payloads across readiness events.
  for (uint8_t b : bytes) {
    PeerSend({b});
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(WaitFor([&] { return handler_.frame_count() == 1; }));
  auto [header, got] = handler_.frame(0);
  EXPECT_EQ(header.type, wire::FrameType::kRequest);
  EXPECT_EQ(header.seq, 42u);
  EXPECT_EQ(got, payload);
}

TEST_F(ConnTest, DecodesManyFramesFromOneChunk) {
  MakeConn();
  std::vector<uint8_t> bytes;
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    auto frame = EncodeFrame(wire::FrameType::kOneWay, seq, {uint8_t(seq)});
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  PeerSend(bytes);
  ASSERT_TRUE(WaitFor([&] { return handler_.frame_count() == 10; }));
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(handler_.frame(i).first.seq, i + 1);
  }
}

TEST_F(ConnTest, WritesFrameReadableByPeer) {
  MakeConn();
  std::vector<uint8_t> payload = {9, 8, 7};
  ASSERT_TRUE(
      conn_->EnqueueWireFrame(wire::FrameType::kResponse, 7, payload));
  std::vector<uint8_t> got = PeerRecv(wire::kHeaderBytes + payload.size());
  wire::FrameHeader header;
  ASSERT_TRUE(wire::DecodeHeader(got.data(), &header).ok());
  EXPECT_EQ(header.type, wire::FrameType::kResponse);
  EXPECT_EQ(header.seq, 7u);
  EXPECT_EQ(std::vector<uint8_t>(got.begin() + wire::kHeaderBytes, got.end()),
            payload);
}

TEST_F(ConnTest, SharedBodyStitchedAfterMeta) {
  MakeConn();
  std::vector<uint8_t> meta = {0xAA, 0xBB};
  SharedBuf body(std::vector<uint8_t>{1, 2, 3, 4});
  ASSERT_TRUE(conn_->EnqueueWireFrame(wire::FrameType::kNotify, 3, meta, body,
                                      false));
  std::vector<uint8_t> got = PeerRecv(wire::kHeaderBytes + 6);
  wire::FrameHeader header;
  ASSERT_TRUE(wire::DecodeHeader(got.data(), &header).ok());
  EXPECT_EQ(header.payload_len, 6u);  // meta + body as one frame
  EXPECT_EQ(std::vector<uint8_t>(got.begin() + wire::kHeaderBytes, got.end()),
            std::vector<uint8_t>({0xAA, 0xBB, 1, 2, 3, 4}));
}

TEST_F(ConnTest, BackpressureWatermarkAndDrainCallback) {
  // Shrink the socket's send buffer so the kernel takes little and the
  // write queue actually backs up.
  int fds[2];  // fresh pair: SO_SNDBUF must be set before data flows
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int sndbuf = 4 * 1024;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                         sizeof(sndbuf)),
            0);
  ::close(peer_fd_);
  peer_fd_ = fds[1];
  Conn::Options opts;
  opts.write_watermark_bytes = 16 * 1024;
  conn_ = std::make_shared<Conn>(&loop_, Socket(fds[0]), &handler_, opts);
  ASSERT_TRUE(conn_->Register().ok());

  // Queue far more than kernel buffer + watermark without reading.
  std::vector<uint8_t> payload(8 * 1024, 0x5A);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(conn_->EnqueueWireFrame(wire::FrameType::kNotify,
                                        uint64_t(i) + 1, payload));
  }
  ASSERT_TRUE(WaitFor([&] { return conn_->write_backlogged(); }));
  EXPECT_EQ(handler_.drained(), 0);

  // Drain the peer side; the queue empties, crosses back below the
  // watermark, and OnWriteDrained fires.
  const size_t total = 64 * (wire::kHeaderBytes + payload.size());
  size_t read = 0;
  std::vector<uint8_t> sink(64 * 1024);
  while (read < total) {
    ssize_t rc = ::recv(peer_fd_, sink.data(), sink.size(), 0);
    ASSERT_GT(rc, 0);
    read += static_cast<size_t>(rc);
  }
  EXPECT_TRUE(WaitFor([&] { return handler_.drained() >= 1; }));
  EXPECT_TRUE(WaitFor([&] { return conn_->write_queue_bytes() == 0; }));
}

TEST_F(ConnTest, PeerCloseRunsOnClosedOnce) {
  MakeConn();
  ::close(peer_fd_);
  peer_fd_ = -1;
  EXPECT_TRUE(WaitFor([&] { return handler_.closed(); }));
  EXPECT_TRUE(conn_->closed());
}

TEST_F(ConnTest, EnqueueAfterCloseReturnsFalse) {
  MakeConn();
  conn_->Close();
  ASSERT_TRUE(WaitFor([&] { return conn_->closed(); }));
  EXPECT_FALSE(conn_->EnqueueWireFrame(wire::FrameType::kResponse, 1, {}));
}

// --- SharedBuf ------------------------------------------------------------

TEST(SharedBufTest, RefcountSharedAcrossQueuesAndReleasedAfterWrite) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  int a[2], b[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, b), 0);
  RecordingHandler ha, hb;
  auto ca = std::make_shared<Conn>(&loop, Socket(a[0]), &ha, Conn::Options());
  auto cb = std::make_shared<Conn>(&loop, Socket(b[0]), &hb, Conn::Options());
  ASSERT_TRUE(ca->Register().ok());
  ASSERT_TRUE(cb->Register().ok());

  SharedBuf body(std::vector<uint8_t>(1024, 0x42));
  EXPECT_EQ(body.use_count(), 1);
  // One body fanned out to two connections: both queues alias the same
  // bytes — the fan-out serialized the payload once.
  ASSERT_TRUE(
      ca->EnqueueWireFrame(wire::FrameType::kNotify, 1, {}, body, false));
  ASSERT_TRUE(
      cb->EnqueueWireFrame(wire::FrameType::kNotify, 1, {}, body, false));
  EXPECT_GE(body.use_count(), 2);

  // Both peers read the identical frame; once flushed, the queues release
  // their references and only the local handle remains.
  auto read_all = [](int fd, size_t n) {
    std::vector<uint8_t> out(n);
    size_t off = 0;
    while (off < n) {
      ssize_t rc = ::recv(fd, out.data() + off, n - off, 0);
      ASSERT_GT(rc, 0);
      off += static_cast<size_t>(rc);
    }
  };
  read_all(a[1], wire::kHeaderBytes + 1024);
  read_all(b[1], wire::kHeaderBytes + 1024);
  for (int i = 0; i < 500 && body.use_count() > 1; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(body.use_count(), 1);

  ca->Close();
  cb->Close();
  loop.Stop();
  ::close(a[1]);
  ::close(b[1]);
}

TEST(SharedBufTest, EmptyIsFalsy) {
  SharedBuf buf;
  EXPECT_FALSE(buf);
  EXPECT_EQ(buf.size(), 0u);
  SharedBuf full(std::vector<uint8_t>{1});
  EXPECT_TRUE(full);
}

}  // namespace
}  // namespace idba
