#include "storage/heap_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace idba {
namespace {

DatabaseObject MakeObj(uint64_t oid, ClassId cls, const std::string& payload) {
  DatabaseObject obj(Oid(oid), cls, 2);
  obj.Set(0, Value(payload));
  obj.Set(1, Value(static_cast<int64_t>(oid)));
  return obj;
}

class HeapStoreTest : public ::testing::Test {
 protected:
  HeapStoreTest() : pool_(&disk_, {.frame_count = 16}) {
    store_ = std::move(HeapStore::Open(&pool_, 0).value());
  }
  MemDisk disk_;
  BufferPool pool_;
  std::unique_ptr<HeapStore> store_;
};

TEST_F(HeapStoreTest, InsertReadRoundTrip) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 1, "hello")).ok());
  auto obj = store_->Read(Oid(1));
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().Get(0), Value("hello"));
  EXPECT_TRUE(store_->Contains(Oid(1)));
  EXPECT_EQ(store_->object_count(), 1u);
}

TEST_F(HeapStoreTest, DuplicateInsertRejected) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 1, "a")).ok());
  EXPECT_EQ(store_->Insert(MakeObj(1, 1, "b")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(HeapStoreTest, ReadMissingIsNotFound) {
  EXPECT_EQ(store_->Read(Oid(404)).status().code(), StatusCode::kNotFound);
}

TEST_F(HeapStoreTest, UpdateInPlace) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 1, "aaaa")).ok());
  ASSERT_TRUE(store_->Update(MakeObj(1, 1, "bbbb")).ok());
  EXPECT_EQ(store_->Read(Oid(1)).value().Get(0), Value("bbbb"));
}

TEST_F(HeapStoreTest, UpdateGrowingRelocates) {
  // Fill a page almost fully, then grow one object so it must relocate.
  std::string payload(900, 'p');
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store_->Insert(MakeObj(i, 1, payload)).ok());
  }
  std::string bigger(2000, 'q');
  ASSERT_TRUE(store_->Update(MakeObj(2, 1, bigger)).ok());
  EXPECT_EQ(store_->Read(Oid(2)).value().Get(0), Value(bigger));
  // Everything else unharmed.
  for (uint64_t i : {1, 3, 4}) {
    EXPECT_EQ(store_->Read(Oid(i)).value().Get(0), Value(payload));
  }
}

TEST_F(HeapStoreTest, EraseRemoves) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 1, "x")).ok());
  ASSERT_TRUE(store_->Erase(Oid(1)).ok());
  EXPECT_FALSE(store_->Contains(Oid(1)));
  EXPECT_EQ(store_->Erase(Oid(1)).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->object_count(), 0u);
}

TEST_F(HeapStoreTest, ScanClassFiltersExactClass) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 7, "a")).ok());
  ASSERT_TRUE(store_->Insert(MakeObj(2, 8, "b")).ok());
  ASSERT_TRUE(store_->Insert(MakeObj(3, 7, "c")).ok());
  auto oids = store_->ScanClass(7);
  ASSERT_TRUE(oids.ok());
  EXPECT_EQ(oids.value(), (std::vector<Oid>{Oid(1), Oid(3)}));
}

TEST_F(HeapStoreTest, ManyObjectsSpanPages) {
  std::string payload(500, 'm');
  for (uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(store_->Insert(MakeObj(i, 1, payload)).ok());
  }
  EXPECT_GT(store_->data_page_count(), 10u);
  for (uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(store_->Read(Oid(i)).ok()) << i;
  }
}

TEST_F(HeapStoreTest, ReopenRebuildsDirectory) {
  std::string payload(300, 'd');
  for (uint64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(store_->Insert(MakeObj(i, 1, payload)).ok());
  }
  ASSERT_TRUE(store_->Erase(Oid(25)).ok());
  PageId pages = store_->data_page_count();
  ASSERT_TRUE(pool_.FlushAll().ok());

  BufferPool pool2(&disk_, {.frame_count = 16});
  auto store2 = HeapStore::Open(&pool2, pages);
  ASSERT_TRUE(store2.ok());
  EXPECT_EQ(store2.value()->object_count(), 49u);
  EXPECT_FALSE(store2.value()->Contains(Oid(25)));
  EXPECT_EQ(store2.value()->Read(Oid(7)).value().Get(0), Value(payload));
}

TEST_F(HeapStoreTest, IoStatsCountMisses) {
  ASSERT_TRUE(store_->Insert(MakeObj(1, 1, "x")).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());
  pool_.DropAllNoFlush();
  IoStats io;
  ASSERT_TRUE(store_->Read(Oid(1), &io).ok());
  EXPECT_EQ(io.page_misses, 1);
  io = IoStats{};
  ASSERT_TRUE(store_->Read(Oid(1), &io).ok());
  EXPECT_EQ(io.page_misses, 0);
}

TEST_F(HeapStoreTest, OversizedObjectRejected) {
  EXPECT_EQ(store_->Insert(MakeObj(1, 1, std::string(5000, 'x'))).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HeapStoreTest, EraseMakesSpaceReusable) {
  std::string payload(1000, 'e');
  for (uint64_t i = 1; i <= 30; ++i) {
    ASSERT_TRUE(store_->Insert(MakeObj(i, 1, payload)).ok());
  }
  PageId pages_before = store_->data_page_count();
  for (uint64_t i = 1; i <= 30; ++i) ASSERT_TRUE(store_->Erase(Oid(i)).ok());
  for (uint64_t i = 31; i <= 60; ++i) {
    ASSERT_TRUE(store_->Insert(MakeObj(i, 1, payload)).ok());
  }
  // Space was reused: page count grew by at most a little.
  EXPECT_LE(store_->data_page_count(), pages_before + 2);
}

TEST(HeapStorePropertyTest, RandomWorkloadMatchesModel) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 32});
  auto store = std::move(HeapStore::Open(&pool, 0).value());
  Rng rng(777);
  std::unordered_map<uint64_t, std::string> model;
  uint64_t next_oid = 1;
  for (int op = 0; op < 2000; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string payload(rng.NextBelow(600), static_cast<char>('a' + rng.NextBelow(26)));
      uint64_t oid = next_oid++;
      ASSERT_TRUE(store->Insert(MakeObj(oid, 1, payload)).ok());
      model[oid] = payload;
    } else if (dice < 0.8 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBelow(model.size()));
      std::string payload(rng.NextBelow(900), 'U');
      ASSERT_TRUE(store->Update(MakeObj(it->first, 1, payload)).ok());
      it->second = payload;
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBelow(model.size()));
      ASSERT_TRUE(store->Erase(Oid(it->first)).ok());
      model.erase(it);
    }
  }
  EXPECT_EQ(store->object_count(), model.size());
  for (const auto& [oid, payload] : model) {
    auto obj = store->Read(Oid(oid));
    ASSERT_TRUE(obj.ok()) << oid;
    EXPECT_EQ(obj.value().Get(0), Value(payload));
  }
}

}  // namespace
}  // namespace idba
