// Net-layer tests: inbox concurrency, notification bus routing and
// metering.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/inbox.h"
#include "net/notification_bus.h"

namespace idba {
namespace {

class TestMessage : public Message {
 public:
  explicit TestMessage(int id, size_t bytes = 100) : id_(id), bytes_(bytes) {}
  std::string_view name() const override { return "Test"; }
  size_t WireBytes() const override { return bytes_; }
  int id() const { return id_; }

 private:
  int id_;
  size_t bytes_;
};

Envelope MakeEnvelope(int id) {
  Envelope e;
  e.msg = std::make_shared<TestMessage>(id);
  return e;
}

TEST(InboxTest, FifoOrder) {
  Inbox inbox;
  for (int i = 0; i < 5; ++i) inbox.Deliver(MakeEnvelope(i));
  EXPECT_EQ(inbox.pending(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto env = inbox.Poll();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(static_cast<const TestMessage*>(env->msg.get())->id(), i);
  }
  EXPECT_FALSE(inbox.Poll().has_value());
}

TEST(InboxTest, DrainAllEmpties) {
  Inbox inbox;
  for (int i = 0; i < 7; ++i) inbox.Deliver(MakeEnvelope(i));
  auto all = inbox.DrainAll();
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(inbox.pending(), 0u);
}

TEST(InboxTest, WaitNextTimesOutEmpty) {
  Inbox inbox;
  auto next = inbox.WaitNext(10);
  EXPECT_FALSE(next.envelope.has_value());
  // A timeout is not a close: the tagged result disambiguates the two.
  EXPECT_FALSE(next.closed);
}

TEST(InboxTest, WaitNextWakesOnDelivery) {
  Inbox inbox;
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto next = inbox.WaitNext(2000);
    got = next.envelope.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  inbox.Deliver(MakeEnvelope(1));
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(InboxTest, CloseWakesWaiters) {
  Inbox inbox;
  std::atomic<bool> returned{false};
  std::atomic<bool> saw_closed{false};
  std::thread waiter([&] {
    auto next = inbox.WaitNext(10000);
    saw_closed = next.closed && !next.envelope.has_value();
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  inbox.Close();
  waiter.join();
  EXPECT_TRUE(returned.load());
  EXPECT_TRUE(saw_closed.load());
  EXPECT_TRUE(inbox.closed());
}

TEST(InboxTest, WaitNextDrainsQueueBeforeReportingClosed) {
  Inbox inbox;
  inbox.Deliver(MakeEnvelope(1));
  inbox.Close();
  auto next = inbox.WaitNext(10);
  ASSERT_TRUE(next.envelope.has_value());
  next = inbox.WaitNext(10);
  EXPECT_FALSE(next.envelope.has_value());
  EXPECT_TRUE(next.closed);
}

TEST(InboxTest, KickWakesWithoutEnvelopeOrClose) {
  Inbox inbox;
  std::atomic<bool> spurious{false};
  std::thread waiter([&] {
    auto next = inbox.WaitNext(10000);
    spurious = !next.envelope.has_value() && !next.closed;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  inbox.Kick();
  waiter.join();
  EXPECT_TRUE(spurious.load());
}

TEST(InboxTest, ConcurrentProducersLoseNothing) {
  Inbox inbox;
  constexpr int kProducers = 4, kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        inbox.Deliver(MakeEnvelope(p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    while (consumed.load() < kProducers * kPerProducer) {
      if (inbox.Poll().has_value()) consumed.fetch_add(1);
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(NotificationBusTest, RoutesToRegisteredEndpoint) {
  NotificationBus bus;
  Inbox a, b;
  bus.Register(1, &a);
  bus.Register(2, &b);
  ASSERT_TRUE(bus.Send(9, 1, std::make_shared<TestMessage>(42), 0).ok());
  EXPECT_EQ(a.pending(), 1u);
  EXPECT_EQ(b.pending(), 0u);
  auto env = a.Poll();
  EXPECT_EQ(env->from, 9u);
  EXPECT_EQ(env->to, 1u);
}

TEST(NotificationBusTest, UnknownEndpointIsNotFound) {
  NotificationBus bus;
  EXPECT_EQ(bus.Send(1, 99, std::make_shared<TestMessage>(1), 0).code(),
            StatusCode::kNotFound);
}

TEST(NotificationBusTest, UnregisterStopsDelivery) {
  NotificationBus bus;
  Inbox a;
  bus.Register(1, &a);
  bus.Unregister(1);
  EXPECT_FALSE(bus.Send(9, 1, std::make_shared<TestMessage>(1), 0).ok());
}

TEST(NotificationBusTest, ArrivalTimeIncludesHopCost) {
  CostModelOptions opts;
  opts.message_base = 10 * kVMillisecond;
  opts.network_bandwidth_bps = 1'000'000;  // 1 MB/s
  NotificationBus bus{CostModel(opts)};
  Inbox a;
  bus.Register(1, &a);
  // 1000 bytes at 1 MB/s = 1 virtual ms extra.
  ASSERT_TRUE(bus.Send(9, 1, std::make_shared<TestMessage>(1, 1000), 500).ok());
  auto env = a.Poll();
  EXPECT_EQ(env->sent_at, 500);
  EXPECT_EQ(env->arrives_at, 500 + 11 * kVMillisecond);
  EXPECT_EQ(env->wire_bytes, 1000u);
}

TEST(NotificationBusTest, CountersAccumulate) {
  NotificationBus bus;
  Inbox a;
  bus.Register(1, &a);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bus.Send(9, 1, std::make_shared<TestMessage>(i, 50), 0).ok());
  }
  EXPECT_EQ(bus.messages_sent(), 3u);
  EXPECT_EQ(bus.bytes_sent(), 150u);
  bus.ResetCounters();
  EXPECT_EQ(bus.messages_sent(), 0u);
}

}  // namespace
}  // namespace idba
