#include "core/display_object.h"

#include <gtest/gtest.h>

#include "viz/color.h"

namespace idba {
namespace {

class DisplayObjectTest : public ::testing::Test {
 protected:
  DisplayObjectTest() {
    link_ = catalog_.DefineClass("Link").value();
    EXPECT_TRUE(
        catalog_.AddAttribute(link_, "Utilization", ValueType::kDouble).ok());
    EXPECT_TRUE(catalog_.AddAttribute(link_, "From", ValueType::kOid).ok());

    DisplayClassDef def("ColorCodedLink", link_);
    def.Project("Utilization", "Utilization")
        .Project("From", "From")
        .Derive("Color",
                [this](const std::vector<DatabaseObject>& srcs) {
                  double u = srcs[0].GetByName(catalog_, "Utilization")
                                 .value()
                                 .AsNumber();
                  return Value(UtilizationColorName(u));
                })
        .Gui("X1", Value(5.0))
        .Gui("Selected", Value(false));
    id_ = schema_.Define(std::move(def), catalog_).value();
  }

  DatabaseObject MakeLink(uint64_t oid, double util) {
    DatabaseObject obj(Oid(oid), link_, 2);
    obj.Set(0, Value(util));
    obj.Set(1, Value(Oid(100)));
    return obj;
  }

  SchemaCatalog catalog_;
  DisplaySchema schema_;
  ClassId link_;
  DisplayClassId id_;
};

TEST_F(DisplayObjectTest, StartsDirtyWithGuiDefaults) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  EXPECT_TRUE(dob.dirty());
  EXPECT_EQ(dob.refresh_count(), 0u);
  EXPECT_EQ(dob.Get("X1").value(), Value(5.0));
  // Projected slots exist but hold null until the first Refresh.
  EXPECT_TRUE(dob.Get("Utilization").value().is_null());
  EXPECT_EQ(dob.Get("NoSuchAttr").status().code(), StatusCode::kNotFound);
}

TEST_F(DisplayObjectTest, RefreshMaterializesProjectionsAndDerivations) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(7, 0.9)}).ok());
  EXPECT_FALSE(dob.dirty());
  EXPECT_EQ(dob.refresh_count(), 1u);
  EXPECT_EQ(dob.Get("Utilization").value(), Value(0.9));
  EXPECT_EQ(dob.Get("Color").value(), Value("red"));
  EXPECT_EQ(dob.Get("From").value(), Value(Oid(100)));
  // GUI attributes untouched by refresh.
  EXPECT_EQ(dob.Get("X1").value(), Value(5.0));
}

TEST_F(DisplayObjectTest, RefreshTracksSourceChanges) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(7, 0.1)}).ok());
  EXPECT_EQ(dob.Get("Color").value(), Value("white"));
  dob.MarkDirty();
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(7, 0.5)}).ok());
  EXPECT_EQ(dob.Get("Color").value(), Value("pink"));
  EXPECT_EQ(dob.refresh_count(), 2u);
}

TEST_F(DisplayObjectTest, RefreshValidatesImages) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  // Wrong count.
  EXPECT_EQ(dob.Refresh(catalog_, {}).code(), StatusCode::kInvalidArgument);
  // Wrong OID.
  EXPECT_EQ(dob.Refresh(catalog_, {MakeLink(8, 0.5)}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DisplayObjectTest, OnlyGuiAttributesWritable) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(7, 0.5)}).ok());
  EXPECT_TRUE(dob.SetGui("X1", Value(10.0)).ok());
  EXPECT_TRUE(dob.SetGui("Selected", Value(true)).ok());
  EXPECT_EQ(dob.Get("X1").value(), Value(10.0));
  // Projected/derived attributes are read-only through the GUI.
  EXPECT_EQ(dob.SetGui("Utilization", Value(1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dob.SetGui("Color", Value("blue")).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DisplayObjectTest, MarkedInUpdateFlag) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  EXPECT_FALSE(dob.marked_in_update());
  dob.SetMarkedInUpdate(true);
  EXPECT_TRUE(dob.marked_in_update());
}

TEST_F(DisplayObjectTest, MultiSourceRefresh) {
  DisplayClassDef def("PathSummary", link_);
  def.Derive("MaxUtilization", [this](const std::vector<DatabaseObject>& srcs) {
    double m = 0;
    for (const auto& s : srcs) {
      m = std::max(m, s.GetByName(catalog_, "Utilization").value().AsNumber());
    }
    return Value(m);
  });
  DisplayClassId path_id = schema_.Define(std::move(def), catalog_).value();

  DisplayObject dob(2, schema_.Find(path_id), {Oid(1), Oid(2), Oid(3)});
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(1, 0.2), MakeLink(2, 0.8),
                                     MakeLink(3, 0.4)})
                  .ok());
  EXPECT_EQ(dob.Get("MaxUtilization").value(), Value(0.8));
  EXPECT_EQ(dob.sources().size(), 3u);
}

TEST_F(DisplayObjectTest, MemoryBytesIsPositiveAndGrowsWithSources) {
  DisplayObject small(1, schema_.Find(id_), {Oid(1)});
  DisplayObject big(2, schema_.Find(id_),
                    std::vector<Oid>(100, Oid(1)));
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST_F(DisplayObjectTest, ToStringListsAttributes) {
  DisplayObject dob(1, schema_.Find(id_), {Oid(7)});
  ASSERT_TRUE(dob.Refresh(catalog_, {MakeLink(7, 0.9)}).ok());
  std::string s = dob.ToString();
  EXPECT_NE(s.find("ColorCodedLink"), std::string::npos);
  EXPECT_NE(s.find("Color"), std::string::npos);
}

}  // namespace
}  // namespace idba
