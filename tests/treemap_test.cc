#include "viz/treemap.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace idba {
namespace {

TreemapNode Leaf(const std::string& label, double weight, uint64_t tag = 0) {
  TreemapNode n;
  n.label = label;
  n.weight = weight;
  n.tag = tag;
  return n;
}

TreemapNode SampleTree() {
  TreemapNode root;
  root.label = "root";
  TreemapNode a;
  a.label = "a";
  a.children = {Leaf("a1", 4, 1), Leaf("a2", 2, 2)};
  TreemapNode b;
  b.label = "b";
  b.children = {Leaf("b1", 1, 3), Leaf("b2", 2, 4), Leaf("b3", 3, 5)};
  root.children = {a, b};
  return root;
}

class TreemapAlgorithms : public ::testing::TestWithParam<TreemapAlgorithm> {};

TEST_P(TreemapAlgorithms, LeafAreasProportionalToWeights) {
  TreemapNode root = SampleTree();
  Rect bounds{0, 0, 120, 80};
  TreemapOptions opts;
  opts.algorithm = GetParam();
  auto rects = LayoutTreemap(root, bounds, opts);
  ASSERT_TRUE(rects.ok());
  double total_weight = root.TotalWeight();
  for (const auto& r : rects.value()) {
    if (!r.leaf) continue;
    double expected = bounds.area() * (r.weight / total_weight);
    EXPECT_NEAR(r.rect.area(), expected, expected * 1e-6) << r.label;
  }
}

TEST_P(TreemapAlgorithms, LeavesCoverBoundsWithoutOverlap) {
  TreemapNode root = SampleTree();
  Rect bounds{0, 0, 100, 100};
  TreemapOptions opts;
  opts.algorithm = GetParam();
  auto rects = LayoutTreemap(root, bounds, opts).value();
  double leaf_area = 0;
  std::vector<Rect> leaves;
  for (const auto& r : rects) {
    if (!r.leaf) continue;
    leaf_area += r.rect.area();
    // Inside bounds.
    EXPECT_GE(r.rect.x, bounds.x - 1e-9);
    EXPECT_GE(r.rect.y, bounds.y - 1e-9);
    EXPECT_LE(r.rect.right(), bounds.right() + 1e-9);
    EXPECT_LE(r.rect.bottom(), bounds.bottom() + 1e-9);
    leaves.push_back(r.rect);
  }
  EXPECT_NEAR(leaf_area, bounds.area(), 1e-6);
  // Pairwise interiors disjoint (shrink slightly to dodge shared edges).
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      EXPECT_FALSE(leaves[i].Inset(1e-6).Intersects(leaves[j].Inset(1e-6)))
          << i << " vs " << j;
    }
  }
}

TEST_P(TreemapAlgorithms, PreOrderParentsBeforeChildren) {
  TreemapNode root = SampleTree();
  TreemapOptions opts;
  opts.algorithm = GetParam();
  auto rects = LayoutTreemap(root, {0, 0, 10, 10}, opts).value();
  EXPECT_EQ(rects[0].label, "root");
  EXPECT_EQ(rects[0].depth, 0);
  // Every node count: 1 root + 2 interior + 5 leaves.
  EXPECT_EQ(rects.size(), 8u);
  std::map<int, int> by_depth;
  for (const auto& r : rects) ++by_depth[r.depth];
  EXPECT_EQ(by_depth[0], 1);
  EXPECT_EQ(by_depth[1], 2);
  EXPECT_EQ(by_depth[2], 5);
}

INSTANTIATE_TEST_SUITE_P(Both, TreemapAlgorithms,
                         ::testing::Values(TreemapAlgorithm::kSliceAndDice,
                                           TreemapAlgorithm::kSquarified));

TEST(TreemapTest, SliceAndDiceAlternatesOrientation) {
  // Root splits horizontally (children side by side), depth-1 splits
  // vertically (children stacked) — the 1991 algorithm's signature.
  TreemapNode root;
  root.label = "r";
  TreemapNode a;
  a.label = "a";
  a.children = {Leaf("a1", 1), Leaf("a2", 1)};
  root.children = {a, Leaf("b", 2)};
  auto rects = LayoutTreemap(root, {0, 0, 100, 100}, {}).value();
  const TreemapRect *a1 = nullptr, *a2 = nullptr;
  for (const auto& r : rects) {
    if (r.label == "a1") a1 = &r;
    if (r.label == "a2") a2 = &r;
  }
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);
  EXPECT_DOUBLE_EQ(a1->rect.x, a2->rect.x);   // stacked vertically
  EXPECT_NE(a1->rect.y, a2->rect.y);
}

TEST(TreemapTest, SquarifiedImprovesAspectRatio) {
  // Many equal leaves: slice-and-dice makes thin strips, squarified must
  // produce a better (lower) worst aspect ratio.
  TreemapNode root;
  root.label = "r";
  for (int i = 0; i < 16; ++i) root.children.push_back(Leaf("x", 1));
  auto worst = [](const std::vector<TreemapRect>& rects) {
    double w = 1;
    for (const auto& r : rects) {
      if (!r.leaf || r.rect.h <= 0 || r.rect.w <= 0) continue;
      w = std::max(w, std::max(r.rect.w / r.rect.h, r.rect.h / r.rect.w));
    }
    return w;
  };
  TreemapOptions sd, sq;
  sq.algorithm = TreemapAlgorithm::kSquarified;
  double w_sd = worst(LayoutTreemap(root, {0, 0, 100, 100}, sd).value());
  double w_sq = worst(LayoutTreemap(root, {0, 0, 100, 100}, sq).value());
  EXPECT_GT(w_sd, 10.0);  // 16 thin strips
  EXPECT_LT(w_sq, 3.0);   // near-square tiles
}

TEST(TreemapTest, NestingInsetShrinksChildren) {
  TreemapNode root = SampleTree();
  TreemapOptions opts;
  opts.nesting_inset = 2.0;
  auto rects = LayoutTreemap(root, {0, 0, 100, 100}, opts).value();
  for (const auto& r : rects) {
    if (r.depth == 1) {
      EXPECT_GE(r.rect.x, 2.0 - 1e-9);
      EXPECT_LE(r.rect.right(), 98.0 + 1e-9);
    }
  }
}

TEST(TreemapTest, InvalidInputsRejected) {
  TreemapNode root = SampleTree();
  EXPECT_FALSE(LayoutTreemap(root, {0, 0, 0, 10}, {}).ok());
  TreemapNode empty;
  empty.label = "e";
  EXPECT_FALSE(LayoutTreemap(empty, {0, 0, 10, 10}, {}).ok());
}

TEST(TreemapTest, ZeroWeightChildGetsZeroArea) {
  TreemapNode root;
  root.label = "r";
  root.children = {Leaf("a", 0), Leaf("b", 5)};
  auto rects = LayoutTreemap(root, {0, 0, 100, 100}, {}).value();
  for (const auto& r : rects) {
    if (r.label == "a") EXPECT_DOUBLE_EQ(r.rect.area(), 0.0);
    if (r.label == "b") EXPECT_NEAR(r.rect.area(), 10000.0, 1e-6);
  }
}

TEST(TreemapTest, TagsPropagate) {
  TreemapNode root;
  root.label = "r";
  root.tag = 77;
  root.children = {Leaf("a", 1, 42)};
  auto rects = LayoutTreemap(root, {0, 0, 10, 10}, {}).value();
  EXPECT_EQ(rects[0].tag, 77u);
  EXPECT_EQ(rects[1].tag, 42u);
}

TEST(TreemapTest, DeepHierarchyLaysOut) {
  TreemapNode node = Leaf("leaf", 3);
  for (int d = 0; d < 10; ++d) {
    TreemapNode parent;
    parent.label = "d" + std::to_string(d);
    parent.children = {node, Leaf("side" + std::to_string(d), 1)};
    node = parent;
  }
  auto rects = LayoutTreemap(node, {0, 0, 1000, 1000}, {}).value();
  EXPECT_EQ(rects.size(), 21u);
  // The deep leaf's area: 1000*1000 * 3/13.
  for (const auto& r : rects) {
    if (r.label == "leaf") {
      EXPECT_NEAR(r.rect.area(), 1e6 * 3 / 13.0, 1.0);
    }
  }
}

}  // namespace
}  // namespace idba
