// Sampling-profiler tests (obs/profiler.h): start/stop lifecycle and
// status, wall-clock sampling of registered threads with role-tagged
// folded-stack output, and the raw-sample dump the crash handler embeds.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/health.h"
#include "obs/profiler.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

// Marked noinline so the symbolized folded stacks have a frame we can grep
// for by name (the compiler would otherwise fold the loop into the lambda).
__attribute__((noinline)) uint64_t SpinSomeWork(std::atomic<bool>* stop) {
  uint64_t acc = 1;
  while (!stop->load(std::memory_order_relaxed)) {
    acc = acc * 2862933555777941757ULL + 3037000493ULL;
  }
  return acc;
}

TEST(ProfilerTest, StartStopLifecycle) {
  obs::Profiler& prof = obs::GlobalProfiler();
  ASSERT_FALSE(prof.running());
  EXPECT_NE(prof.StatusLine().find("stopped"), std::string::npos);

  ASSERT_TRUE(prof.Start(99));
  EXPECT_TRUE(prof.running());
  EXPECT_EQ(prof.hz(), 99);
  EXPECT_FALSE(prof.Start(50)) << "double-start must be rejected";
  EXPECT_EQ(prof.hz(), 99);
  EXPECT_NE(prof.StatusLine().find("running hz=99"), std::string::npos);

  prof.Stop();
  EXPECT_FALSE(prof.running());
  // Stop is idempotent and restart works.
  prof.Stop();
  ASSERT_TRUE(prof.Start(100));
  prof.Stop();
}

TEST(ProfilerTest, ClampsRate) {
  obs::Profiler& prof = obs::GlobalProfiler();
  ASSERT_TRUE(prof.Start(100000));
  EXPECT_LE(prof.hz(), 1000);
  prof.Stop();
  ASSERT_TRUE(prof.Start(0));
  EXPECT_GE(prof.hz(), 1);
  prof.Stop();
}

TEST(ProfilerTest, SamplesRegisteredThreadWithRoleTag) {
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    obs::RegisterThisThread("prof-busy-worker");
    SpinSomeWork(&stop);
    obs::UnregisterThisThread();
  });

  obs::Profiler& prof = obs::GlobalProfiler();
  const uint64_t samples_before = prof.samples();
  ASSERT_TRUE(prof.Start(250));
  // At 250 Hz even heavy sanitizer slowdown leaves plenty of ticks; the
  // round-robin lands on the one samplable busy thread almost every tick.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  std::string folded;
  bool tagged = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(100ms);
    folded = prof.DumpFolded();
    if (folded.find("prof-busy-worker") != std::string::npos) {
      tagged = true;
      break;
    }
  }
  prof.Stop();
  stop.store(true);
  busy.join();

  EXPECT_GT(prof.samples(), samples_before);
  EXPECT_TRUE(tagged) << folded;
  // Folded lines are "role;outer;...;leaf count".
  const size_t pos = folded.find("prof-busy-worker");
  const size_t eol = folded.find('\n', pos);
  const std::string line = folded.substr(pos, eol - pos);
  EXPECT_NE(line.find(';'), std::string::npos) << line;
  EXPECT_NE(line.find_last_of(' '), std::string::npos) << line;
}

TEST(ProfilerTest, RawDumpWritesSampleLines) {
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    obs::RegisterThisThread("raw-dump-worker");
    SpinSomeWork(&stop);
    obs::UnregisterThisThread();
  });
  obs::Profiler& prof = obs::GlobalProfiler();
  ASSERT_TRUE(prof.Start(250));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (prof.samples() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(50ms);
  }
  prof.Stop();
  stop.store(true);
  busy.join();
  ASSERT_GT(prof.samples(), 0u);

  char path[] = "/tmp/idba_profiler_raw_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  obs::ProfilerDumpRawToFd(fd);
  ::lseek(fd, 0, SEEK_SET);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) raw.append(buf, n);
  ::close(fd);
  ::unlink(path);

  EXPECT_NE(raw.find("sample slot="), std::string::npos) << raw.substr(0, 200);
  EXPECT_NE(raw.find("role="), std::string::npos);
  EXPECT_NE(raw.find("frames=0x"), std::string::npos);
}

}  // namespace
}  // namespace idba
