#include <gtest/gtest.h>

#include "viz/ascii_canvas.h"
#include "viz/color.h"
#include "viz/geometry.h"

namespace idba {
namespace {

// --- Color / width coding (paper §2.1) ------------------------------------

TEST(ColorTest, PaperCategoriesWhitePinkRed) {
  EXPECT_EQ(UtilizationColorName(0.0), "white");
  EXPECT_EQ(UtilizationColorName(0.2), "white");
  EXPECT_EQ(UtilizationColorName(0.4), "pink");
  EXPECT_EQ(UtilizationColorName(0.65), "pink");
  EXPECT_EQ(UtilizationColorName(0.7), "red");
  EXPECT_EQ(UtilizationColorName(1.0), "red");
}

TEST(ColorTest, RampEndpointsAndMonotonicRedness) {
  EXPECT_EQ(UtilizationColor(0.0), (Rgb{255, 255, 255}));
  Rgb high = UtilizationColor(1.0);
  EXPECT_GT(high.r, 200);
  EXPECT_EQ(high.g, 0);
  // Green channel decreases monotonically with utilization.
  int prev_g = 256;
  for (double u = 0; u <= 1.0; u += 0.1) {
    Rgb c = UtilizationColor(u);
    EXPECT_LE(c.g, prev_g);
    prev_g = c.g;
  }
}

TEST(ColorTest, OutOfRangeClamped) {
  EXPECT_EQ(UtilizationColor(-1.0), UtilizationColor(0.0));
  EXPECT_EQ(UtilizationColor(2.0), UtilizationColor(1.0));
  EXPECT_EQ(UtilizationColorName(-5), "white");
  EXPECT_EQ(UtilizationColorName(5), "red");
}

TEST(ColorTest, HexFormat) {
  EXPECT_EQ((Rgb{255, 0, 16}).ToHex(), "#FF0010");
}

TEST(ColorTest, WidthProportionalToUtilization) {
  EXPECT_DOUBLE_EQ(UtilizationWidth(0.0), 1.0);
  EXPECT_DOUBLE_EQ(UtilizationWidth(1.0), 9.0);
  EXPECT_DOUBLE_EQ(UtilizationWidth(0.5), 5.0);
  EXPECT_DOUBLE_EQ(UtilizationWidth(0.5, 2, 4), 3.0);
  EXPECT_DOUBLE_EQ(UtilizationWidth(7.0), 9.0);  // clamped
}

// --- Geometry ---------------------------------------------------------------

TEST(GeometryTest, RectBasics) {
  Rect r{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(r.area(), 1200);
  EXPECT_DOUBLE_EQ(r.right(), 40);
  EXPECT_DOUBLE_EQ(r.bottom(), 60);
  EXPECT_TRUE(r.Contains({10, 20}));
  EXPECT_TRUE(r.Contains({39.9, 59.9}));
  EXPECT_FALSE(r.Contains({40, 60}));
}

TEST(GeometryTest, Intersection) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.Intersects({5, 5, 10, 10}));
  EXPECT_FALSE(a.Intersects({10, 0, 5, 5}));  // edge-adjacent: open interval
  EXPECT_FALSE(a.Intersects({20, 20, 5, 5}));
}

TEST(GeometryTest, InsetClampsAtZero) {
  Rect r{0, 0, 10, 10};
  Rect i = r.Inset(2);
  EXPECT_DOUBLE_EQ(i.x, 2);
  EXPECT_DOUBLE_EQ(i.w, 6);
  Rect tiny = r.Inset(20);
  EXPECT_DOUBLE_EQ(tiny.w, 0);
  EXPECT_DOUBLE_EQ(tiny.h, 0);
}

// --- AsciiCanvas -------------------------------------------------------------

TEST(AsciiCanvasTest, PutTextAndBounds) {
  AsciiCanvas canvas(10, 3);
  canvas.Text(2, 1, "hi");
  EXPECT_EQ(canvas.At(2, 1), 'h');
  EXPECT_EQ(canvas.At(3, 1), 'i');
  // Out-of-bounds writes are silently clipped.
  canvas.Put(-1, 0, 'x');
  canvas.Put(100, 100, 'x');
  canvas.Text(8, 0, "long-text");
  EXPECT_EQ(canvas.At(9, 0), 'o');
  EXPECT_EQ(canvas.At(0, 0), ' ');
}

TEST(AsciiCanvasTest, BoxDrawsBorders) {
  AsciiCanvas canvas(10, 6);
  canvas.Box(Rect{1, 1, 5, 4}, '+', '.');
  EXPECT_EQ(canvas.At(1, 1), '+');
  EXPECT_EQ(canvas.At(5, 1), '+');
  EXPECT_EQ(canvas.At(1, 4), '+');
  EXPECT_EQ(canvas.At(3, 1), '-');
  EXPECT_EQ(canvas.At(1, 2), '|');
  EXPECT_EQ(canvas.At(3, 2), '.');  // fill
}

TEST(AsciiCanvasTest, LineConnectsEndpoints) {
  AsciiCanvas canvas(10, 10);
  canvas.Line({0, 0}, {9, 9}, '*');
  EXPECT_EQ(canvas.At(0, 0), '*');
  EXPECT_EQ(canvas.At(9, 9), '*');
  EXPECT_EQ(canvas.At(5, 5), '*');
  canvas.Clear();
  canvas.Line({0, 5}, {9, 5}, '#');
  for (int x = 0; x <= 9; ++x) EXPECT_EQ(canvas.At(x, 5), '#');
}

TEST(AsciiCanvasTest, ToStringHasOneRowPerLine) {
  AsciiCanvas canvas(3, 2, '.');
  std::string s = canvas.ToString();
  EXPECT_EQ(s, "...\n...\n");
}

TEST(AsciiCanvasTest, HLineVLineSwapEndpoints) {
  AsciiCanvas canvas(10, 10);
  canvas.HLine(7, 2, 0, '-');
  EXPECT_EQ(canvas.At(5, 0), '-');
  canvas.VLine(0, 8, 3, '|');
  EXPECT_EQ(canvas.At(0, 5), '|');
}

}  // namespace
}  // namespace idba
