#include "storage/page.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace idba {
namespace {

std::vector<uint8_t> Rec(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

TEST(SlottedPageTest, InsertAndRead) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  auto a = page.Insert(Rec("alpha").data(), 5);
  auto b = page.Insert(Rec("bravo!").data(), 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(Str(page.Read(a.value()).value()), "alpha");
  EXPECT_EQ(Str(page.Read(b.value()).value()), "bravo!");
  EXPECT_EQ(page.slot_count(), 2);
}

TEST(SlottedPageTest, ReadBadSlotIsNotFound) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  EXPECT_EQ(page.Read(0).status().code(), StatusCode::kNotFound);
}

TEST(SlottedPageTest, UpdateInPlaceAndShrink) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  SlotId s = page.Insert(Rec("longrecord").data(), 10).value();
  ASSERT_TRUE(page.Update(s, Rec("short").data(), 5).ok());
  EXPECT_EQ(Str(page.Read(s).value()), "short");
}

TEST(SlottedPageTest, UpdateGrowRelocatesWithinPage) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  SlotId s = page.Insert(Rec("ab").data(), 2).value();
  SlotId t = page.Insert(Rec("cd").data(), 2).value();
  std::string big(100, 'G');
  ASSERT_TRUE(page.Update(s, Rec(big).data(), big.size()).ok());
  EXPECT_EQ(Str(page.Read(s).value()), big);
  EXPECT_EQ(Str(page.Read(t).value()), "cd");  // neighbor untouched
}

TEST(SlottedPageTest, EraseThenSlotReuse) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  SlotId a = page.Insert(Rec("one").data(), 3).value();
  SlotId b = page.Insert(Rec("two").data(), 3).value();
  ASSERT_TRUE(page.Erase(a).ok());
  EXPECT_EQ(page.Read(a).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(page.Erase(a).code(), StatusCode::kNotFound);  // double erase
  SlotId c = page.Insert(Rec("three").data(), 5).value();
  EXPECT_EQ(c, a);  // tombstoned slot id reused
  EXPECT_EQ(Str(page.Read(b).value()), "two");
  EXPECT_EQ(Str(page.Read(c).value()), "three");
}

TEST(SlottedPageTest, FillsUntilBusyThenCompactReclaims) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  std::vector<SlotId> slots;
  std::string rec(100, 'r');
  for (;;) {
    auto s = page.Insert(Rec(rec).data(), rec.size());
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsBusy());
      break;
    }
    slots.push_back(s.value());
  }
  EXPECT_GT(slots.size(), 30u);  // ~4KB / 104B
  // Erase half, compaction (inside Insert) must make room again.
  for (size_t i = 0; i < slots.size(); i += 2) ASSERT_TRUE(page.Erase(slots[i]).ok());
  auto s = page.Insert(Rec(rec).data(), rec.size());
  EXPECT_TRUE(s.ok());
}

TEST(SlottedPageTest, LsnRoundTrips) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  EXPECT_EQ(page.lsn(), 0u);
  page.set_lsn(0xFEEDFACE12345678ULL);
  EXPECT_EQ(page.lsn(), 0xFEEDFACE12345678ULL);
}

TEST(SlottedPageTest, LiveRecordsSkipsTombstones) {
  PageData data;
  SlottedPage page(&data);
  page.Init();
  SlotId a = page.Insert(Rec("aa").data(), 2).value();
  page.Insert(Rec("bb").data(), 2).value();
  ASSERT_TRUE(page.Erase(a).ok());
  auto live = page.LiveRecords();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(Str(live[0].second), "bb");
}

TEST(SlottedPageProperty, RandomOpsPreserveContents) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    PageData data;
    SlottedPage page(&data);
    page.Init();
    std::map<SlotId, std::string> model;
    for (int op = 0; op < 300; ++op) {
      double dice = rng.NextDouble();
      if (dice < 0.5) {
        std::string rec(1 + rng.NextBelow(120), static_cast<char>('a' + rng.NextBelow(26)));
        auto s = page.Insert(reinterpret_cast<const uint8_t*>(rec.data()), rec.size());
        if (s.ok()) model[s.value()] = rec;
      } else if (dice < 0.75 && !model.empty()) {
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        std::string rec(1 + rng.NextBelow(150), 'U');
        if (page.Update(it->first, reinterpret_cast<const uint8_t*>(rec.data()),
                        rec.size()).ok()) {
          it->second = rec;
        }
      } else if (!model.empty()) {
        auto it = model.begin();
        std::advance(it, rng.NextBelow(model.size()));
        ASSERT_TRUE(page.Erase(it->first).ok());
        model.erase(it);
      }
    }
    // The page must agree with the model exactly.
    auto live = page.LiveRecords();
    ASSERT_EQ(live.size(), model.size());
    for (const auto& [slot, bytes] : live) {
      ASSERT_TRUE(model.count(slot));
      EXPECT_EQ(Str(bytes), model[slot]);
    }
  }
}

}  // namespace
}  // namespace idba
