// Stress tests of the display stack under concurrency: views opening and
// closing while writers commit and pump threads dispatch notifications.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/monitor.h"

namespace idba {
namespace {

class DlcStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentOptions opts;
    opts.dlm.protocol = NotifyProtocol::kEarlyNotify;
    deployment_ = std::make_unique<Deployment>(opts);
    NmsConfig config;
    config.num_nodes = 16;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(DlcStressTest, ViewsOpenAndCloseUnderUpdateFire) {
  auto viewer = deployment_->NewSession(100);
  viewer->StartPump();
  auto monitor_session = deployment_->NewSession(50);
  MonitorProcess monitor(&monitor_session->client(), &db_,
                         MonitorOptions{.updates_per_step = 2, .interval_ms = 1});
  monitor.Start();

  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  // Churn views on the UI thread while updates and notifications fly.
  for (int round = 0; round < 30; ++round) {
    ActiveView* view = viewer->CreateView("churn-" + std::to_string(round));
    ASSERT_TRUE(view->PopulateFromClass(dc).ok());
    ASSERT_TRUE(viewer->CloseView("churn-" + std::to_string(round)).ok());
  }
  monitor.Stop();
  viewer->StopPump();
  viewer->PumpOnce();  // drain leftovers

  // Everything released: no locks, no pinned display objects.
  EXPECT_EQ(deployment_->dlm().locked_object_count(), 0u);
  EXPECT_EQ(viewer->display_cache().object_count(), 0u);
}

TEST_F(DlcStressTest, ManySessionsConcurrentLifecycle) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c) {
    threads.emplace_back([&, c] {
      auto session = deployment_->NewSession(100 + c);
      const DisplayClassDef* dc =
          deployment_->display_schema().Find(dcs_.color_coded_link);
      for (int round = 0; round < 10; ++round) {
        ActiveView* view = session->CreateView("v" + std::to_string(round));
        if (!view->PopulateFromClass(dc).ok()) failures.fetch_add(1);
        session->PumpOnce();
        if (!session->CloseView("v" + std::to_string(round)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(deployment_->dlm().locked_object_count(), 0u);
}

TEST_F(DlcStressTest, LongRunningSceneStaysExactUnderFire) {
  auto viewer = deployment_->NewSession(100);
  ActiveView* view = viewer->CreateView("scene");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(view->PopulateFromClass(dc).ok());
  viewer->StartPump();

  auto monitor_session = deployment_->NewSession(50);
  MonitorProcess monitor(&monitor_session->client(), &db_,
                         MonitorOptions{.updates_per_step = 3});
  for (int i = 0; i < 150; ++i) ASSERT_TRUE(monitor.StepOnce().ok());

  // Wait for the pump to drain, then the scene must be exact.
  for (int i = 0; i < 200 && viewer->client().inbox().pending() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  viewer->StopPump();
  viewer->PumpOnce();
  EXPECT_EQ(view->CountStaleObjects(), 0u);
  EXPECT_GT(view->refreshes(), 0u);
}

TEST_F(DlcStressTest, EarlyNotifyMarksNeverLeakAfterResolution) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("scene");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(view->PopulateFromClass(dc).ok());

  const SchemaCatalog& cat = deployment_->server().schema();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Oid oid = db_.link_oids[rng.NextBelow(db_.link_oids.size())];
    TxnId t = writer->client().Begin();
    auto obj = writer->client().Read(t, oid);
    ASSERT_TRUE(obj.ok());
    DatabaseObject link = std::move(obj).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", rng.NextDouble()).ok());
    ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
    if (rng.NextBool(0.4)) {
      ASSERT_TRUE(writer->client().Abort(t).ok());
    } else {
      ASSERT_TRUE(writer->client().Commit(t).ok());
    }
  }
  viewer->PumpOnce();
  // Every intent was resolved (commit or abort): nothing stays marked.
  for (DisplayObject* dob : view->display_objects()) {
    EXPECT_FALSE(dob->marked_in_update()) << dob->ToString();
  }
  for (Oid oid : db_.link_oids) {
    EXPECT_FALSE(view->IsSourceMarked(oid));
  }
}

}  // namespace
}  // namespace idba
