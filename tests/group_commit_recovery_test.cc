// Crash-recovery matrix for the group-commit WAL.
//
// Each test injects a "kill point" in the commit pipeline — records
// appended but unflushed, a batch partially page-written, a commit durable
// but the heap apply never run — snapshots the WAL disk as a crashed image
// (MemDisk::Clone), and asserts that replaying it yields exactly the
// committed prefix: every transaction whose commit became durable, nothing
// else.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_store.h"
#include "storage/wal.h"
#include "txn/recovery.h"
#include "txn/txn_manager.h"

namespace idba {
namespace {

DatabaseObject MakeObj(Oid oid, int64_t v) {
  DatabaseObject obj(oid, 1, 1);
  obj.Set(0, Value(v));
  return obj;
}

/// ~400-byte object: a batch of a few dozen spans multiple WAL pages, which
/// the torn-batch and stale-page tests below rely on.
DatabaseObject MakeBigObj(Oid oid, int64_t v) {
  DatabaseObject obj(oid, 1, 2);
  obj.Set(0, Value(v));
  obj.Set(1, Value(std::string(400, 'x')));
  return obj;
}

/// Fresh heap stack + replay of `wal_image` into it.
struct Recovered {
  MemDisk data;
  BufferPool pool{&data, {.frame_count = 32}};
  std::unique_ptr<HeapStore> heap;
  RecoveryStats stats;

  explicit Recovered(Disk* wal_image) {
    heap = std::move(HeapStore::Open(&pool, 0).value());
    stats = RecoverFromWal(wal_image, heap.get()).value();
  }
};

/// Disk wrapper that simulates a crash mid-batch: after `n` more page
/// writes every write (and sync) fails, as if power was cut — earlier
/// writes of the batch are on disk, later ones never happen.
class DieAfterNWritesDisk : public Disk {
 public:
  explicit DieAfterNWritesDisk(MemDisk* base) : base_(base) {}
  void DieAfterWrites(int n) { remaining_.store(n); }
  Status ReadPage(PageId id, PageData* out) override {
    return base_->ReadPage(id, out);
  }
  Status WritePage(PageId id, const PageData& data) override {
    if (remaining_.load() >= 0 && remaining_.fetch_sub(1) <= 0) {
      return Status::IOError("simulated crash: write dropped");
    }
    return base_->WritePage(id, data);
  }
  Status Sync() override {
    if (remaining_.load() >= 0 && remaining_.load() <= 0) {
      return Status::IOError("simulated crash: sync dropped");
    }
    return base_->Sync();
  }
  Status Truncate() override { return base_->Truncate(); }
  PageId PageCount() const override { return base_->PageCount(); }

 private:
  MemDisk* base_;
  std::atomic<int> remaining_{-1};  // -1 = healthy
};

TEST(GroupCommitRecoveryTest, AppendedButUnflushedRecordsAreNotRecovered) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 32});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  // One durable commit, then a transaction whose records are appended but
  // never synced (durable_commit = true would flush; emulate the kill point
  // between the append phase and the durability barrier via the Wal).
  TxnId t1 = mgr.Begin();
  Oid committed = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t1, MakeObj(committed, 1)).ok());
  ASSERT_TRUE(mgr.Commit(t1).ok());

  Oid lost(committed.value + 1);
  WalRecord ins;
  ins.type = WalRecordType::kInsert;
  ins.txn = 99;
  ins.oid = lost;
  ins.after = MakeObj(lost, 2);
  ASSERT_TRUE(wal.Append(std::move(ins)).ok());
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 99;
  ASSERT_TRUE(wal.Append(std::move(commit)).ok());
  // Crash here: no WaitDurable ever runs.

  auto image = wal_disk.Clone();
  Recovered rec(image.get());
  EXPECT_TRUE(rec.heap->Contains(committed));
  EXPECT_FALSE(rec.heap->Contains(lost));
  EXPECT_EQ(rec.stats.committed_txns, 1u);
}

TEST(GroupCommitRecoveryTest, PartiallyWrittenBatchRecoversCommittedPrefix) {
  MemDisk data_disk, wal_base;
  DieAfterNWritesDisk wal_disk(&wal_base);
  BufferPool pool(&data_disk, {.frame_count = 32});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  TxnId t1 = mgr.Begin();
  Oid committed = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t1, MakeObj(committed, 1)).ok());
  ASSERT_TRUE(mgr.Commit(t1).ok());

  // A transaction big enough that its batch spans several pages; the disk
  // dies after the first page write, so the batch — including its commit
  // record — is torn on disk.
  TxnId t2 = mgr.Begin();
  std::vector<Oid> torn;
  for (int i = 0; i < 40; ++i) {
    Oid oid = mgr.AllocateOid();
    torn.push_back(oid);
    ASSERT_TRUE(mgr.Insert(t2, MakeBigObj(oid, 100 + i)).ok());
  }
  wal_disk.DieAfterWrites(1);
  auto commit = mgr.Commit(t2);
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(mgr.GetState(t2), TxnState::kAborted);

  auto image = wal_base.Clone();
  Recovered rec(image.get());
  EXPECT_TRUE(rec.heap->Contains(committed));
  for (Oid oid : torn) EXPECT_FALSE(rec.heap->Contains(oid));
  EXPECT_EQ(rec.stats.committed_txns, 1u);
}

TEST(GroupCommitRecoveryTest, StalePagesFromFailedBatchNeverResurrect) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 32});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  // Big transaction whose batch page-writes all land but whose sync fails:
  // its pages (with its commit record) sit on disk beyond the logical tail.
  TxnId t1 = mgr.Begin();
  std::vector<Oid> failed;
  for (int i = 0; i < 40; ++i) {
    Oid oid = mgr.AllocateOid();
    failed.push_back(oid);
    ASSERT_TRUE(mgr.Insert(t1, MakeBigObj(oid, i)).ok());
  }
  wal_disk.InjectSyncFailures(1);
  EXPECT_FALSE(mgr.Commit(t1).ok());

  // A small transaction then commits successfully, rewriting only the tail
  // page — the failed batch's later pages remain as stale garbage that the
  // recovery scan must cut off (their LSNs regress behind the new tail).
  TxnId t2 = mgr.Begin();
  Oid small = mgr.AllocateOid();
  ASSERT_TRUE(mgr.Insert(t2, MakeObj(small, 7)).ok());
  ASSERT_TRUE(mgr.Commit(t2).ok());

  auto image = wal_disk.Clone();
  Recovered rec(image.get());
  EXPECT_TRUE(rec.heap->Contains(small));
  for (Oid oid : failed) EXPECT_FALSE(rec.heap->Contains(oid));
}

TEST(GroupCommitRecoveryTest, DurableCommitWithoutHeapApplyIsRedone) {
  // Kill point: commit record durable, crash before the heap apply (or, the
  // same image, before any checkpoint shipped heap pages). Replay must
  // redo the transaction in full.
  MemDisk wal_disk;
  Wal wal(&wal_disk);
  Oid oid(1);
  WalRecord ins;
  ins.type = WalRecordType::kInsert;
  ins.txn = 5;
  ins.oid = oid;
  ins.after = MakeObj(oid, 42);
  ins.after.set_version(1);
  ASSERT_TRUE(wal.Append(std::move(ins)).ok());
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 5;
  Lsn commit_lsn = wal.Append(std::move(commit)).value();
  ASSERT_TRUE(wal.WaitDurable(commit_lsn).ok());

  auto image = wal_disk.Clone();
  Recovered rec(image.get());
  ASSERT_TRUE(rec.heap->Contains(oid));
  EXPECT_EQ(rec.heap->Read(oid).value().Get(0), Value(int64_t(42)));
  EXPECT_EQ(rec.stats.redone_writes, 1u);
}

TEST(GroupCommitRecoveryTest, AbortRecordCancelsAnEarlierCommitRecord) {
  // The commit path appends a best-effort abort record when the sync
  // covering a commit record fails (the record may still be on disk, but
  // the client was told the commit failed). Recovery processes winners in
  // log order: the abort must cancel the commit.
  MemDisk wal_disk;
  Wal wal(&wal_disk);
  Oid oid(1);
  WalRecord ins;
  ins.type = WalRecordType::kInsert;
  ins.txn = 5;
  ins.oid = oid;
  ins.after = MakeObj(oid, 1);
  ASSERT_TRUE(wal.Append(std::move(ins)).ok());
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 5;
  ASSERT_TRUE(wal.Append(std::move(commit)).ok());
  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.txn = 5;
  ASSERT_TRUE(wal.Append(std::move(abort)).ok());
  ASSERT_TRUE(wal.Flush().ok());

  Recovered rec(&wal_disk);
  EXPECT_FALSE(rec.heap->Contains(oid));
  EXPECT_EQ(rec.stats.committed_txns, 0u);
}

TEST(GroupCommitRecoveryTest, ConcurrentCommittersAllSurviveACrash) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 64});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        TxnId txn = mgr.Begin();
        Oid oid = mgr.AllocateOid();
        if (!mgr.Insert(txn, MakeObj(oid, i)).ok() || !mgr.Commit(txn).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Crash after the storm: every acknowledged commit must replay.
  auto image = wal_disk.Clone();
  Recovered rec(image.get());
  EXPECT_EQ(rec.stats.committed_txns,
            static_cast<size_t>(kThreads * kRounds));
  EXPECT_EQ(rec.stats.redone_writes,
            static_cast<size_t>(kThreads * kRounds));
  // Group commit held: no more sync barriers than commits (usually far
  // fewer; equality only if the threads never overlapped).
  EXPECT_LE(wal_disk.syncs(), static_cast<uint64_t>(kThreads * kRounds));
}

}  // namespace
}  // namespace idba
