// Admin introspection RPCs (METRICS / LOCKS / CACHES) over a real TCP
// transport: callable pre-Hello on a fresh connection, readable by wire-v1
// peers (whose decoders never saw TraceInfo or the traced bit), and
// returning documents that reflect actual server state.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "core/session.h"
#include "net/remote_client.h"
#include "nms/network_model.h"
#include "net/socket.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "tools/prom_text.h"

namespace idba {
namespace {

class AdminIntrospectTest : public ::testing::Test {
 protected:
  void StartServer(DeploymentOptions opts = {}) {
    deployment_ = std::make_unique<Deployment>(opts);
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter());
    ASSERT_TRUE(transport_->Start().ok());
    ASSERT_NE(transport_->port(), 0);
  }

  void TearDown() override {
    transport_.reset();
    deployment_.reset();
  }

  /// Raw admin call exactly as a v1 peer would issue it: no Hello first,
  /// no trace bit, body = method | vtime | args. Returns the response
  /// string payload.
  std::string RawAdminCall(Socket& sock, wire::Method method,
                           const std::vector<uint8_t>& args, uint64_t seq) {
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    enc.PutU8(static_cast<uint8_t>(method));
    enc.PutI64(0);
    payload.insert(payload.end(), args.begin(), args.end());
    std::mutex mu;
    EXPECT_TRUE(
        sock.WriteFrame(mu, wire::FrameType::kRequest, seq, payload).ok());
    wire::FrameHeader header;
    std::vector<uint8_t> resp;
    for (;;) {
      if (!sock.ReadFrame(&header, &resp).ok()) {
        ADD_FAILURE() << "connection dropped awaiting admin response";
        return "";
      }
      if (header.type == wire::FrameType::kResponse) break;
    }
    Decoder dec(resp.data(), resp.size());
    if (header.traced) {
      wire::TraceInfo ignored;
      EXPECT_TRUE(wire::DecodeTraceInfo(&dec, &ignored).ok());
    }
    Status st;
    EXPECT_TRUE(wire::DecodeStatus(&dec, &st).ok());
    EXPECT_TRUE(st.ok()) << st.ToString();
    int64_t completion = 0;
    EXPECT_TRUE(dec.GetI64(&completion).ok());
    std::string out;
    EXPECT_TRUE(dec.GetString(&out).ok());
    return out;
  }

  Socket RawConnect() {
    Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
    EXPECT_TRUE(raw.ok());
    return std::move(raw).value();
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<TransportServer> transport_;
};

TEST_F(AdminIntrospectTest, MetricsPromTextPreHello) {
  StartServer();
  Socket sock = RawConnect();
  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(0);  // format 0: Prometheus text
  const std::string text = RawAdminCall(sock, wire::Method::kMetrics, args, 1);
  ASSERT_FALSE(text.empty());
  tools::PromSamples samples = tools::ParsePromText(text);
  // The canonical cache hierarchy and lock counters registered by the
  // deployment's component constructors are all present.
  EXPECT_TRUE(samples.count("idba_cache_page_hits_total"));
  EXPECT_TRUE(samples.count("idba_cache_display_hits_total"));
  EXPECT_TRUE(samples.count("idba_cache_display_evictions_total"));
  EXPECT_TRUE(samples.count("idba_txn_lock_grants_total"));
  EXPECT_TRUE(samples.count("idba_storage_heap_page_misses_total"));
  EXPECT_TRUE(samples.count("idba_transport_requests_total"));
}

TEST_F(AdminIntrospectTest, MetricsJsonFormats) {
  StartServer();
  Socket sock = RawConnect();
  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(1);  // format 1: registry DumpJson
  const std::string reg_json =
      RawAdminCall(sock, wire::Method::kMetrics, args, 1);
  EXPECT_NE(reg_json.find("\"counters\""), std::string::npos);
  EXPECT_NE(reg_json.find("\"histograms\""), std::string::npos);

  args.clear();
  Encoder enc2(&args);
  enc2.PutU8(2);  // format 2: time-series ring
  const std::string ts_json =
      RawAdminCall(sock, wire::Method::kMetrics, args, 2);
  EXPECT_NE(ts_json.find("\"windows\""), std::string::npos);
}

TEST_F(AdminIntrospectTest, LocksReflectsHeldAndContendedLocks) {
  StartServer();
  // Drive real lock traffic through a remote client so the LOCKS document
  // reflects genuine LockManager state rather than empty tables.
  auto client =
      RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100);
  ASSERT_TRUE(client.ok());
  ClassId cls = client.value()->DefineClass("Row").value();
  Oid oid = client.value()->AllocateOid();
  TxnId t = client.value()->Begin();
  DatabaseObject obj = NewObject(client.value()->schema(), cls, oid);
  ASSERT_TRUE(client.value()->Insert(t, obj).ok());
  // Transaction t holds its insert locks while we snapshot the table.
  Socket sock = RawConnect();
  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(5);  // top_k
  const std::string locks = RawAdminCall(sock, wire::Method::kLocks, args, 1);
  EXPECT_NE(locks.find("\"lock_table\""), std::string::npos);
  EXPECT_NE(locks.find("\"wait_edges\""), std::string::npos);
  EXPECT_NE(locks.find("\"top_contended\""), std::string::npos);
  EXPECT_NE(locks.find("\"counters\""), std::string::npos);
  EXPECT_NE(locks.find("\"granted\""), std::string::npos);
  ASSERT_TRUE(client.value()->Commit(t).ok());
}

TEST_F(AdminIntrospectTest, CachesReportsHierarchyAndRegistry) {
  StartServer();
  auto client =
      RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100);
  ASSERT_TRUE(client.ok());
  ClassId cls = client.value()->DefineClass("Row").value();
  Oid oid = client.value()->AllocateOid();
  TxnId t = client.value()->Begin();
  DatabaseObject obj = NewObject(client.value()->schema(), cls, oid);
  ASSERT_TRUE(client.value()->Insert(t, obj).ok());
  ASSERT_TRUE(client.value()->Commit(t).ok());

  Socket sock = RawConnect();
  const std::string caches =
      RawAdminCall(sock, wire::Method::kCaches, {}, 1);
  EXPECT_NE(caches.find("\"page\""), std::string::npos);
  EXPECT_NE(caches.find("\"dirty_ratio\""), std::string::npos);
  EXPECT_NE(caches.find("\"object\""), std::string::npos);
  EXPECT_NE(caches.find("\"display\""), std::string::npos);
  EXPECT_NE(caches.find("\"registry\""), std::string::npos);
  EXPECT_NE(caches.find("cache.page.hits"), std::string::npos);
}

TEST_F(AdminIntrospectTest, WireV1PeerAfterHelloCanIntrospect) {
  StartServer();
  Socket sock = RawConnect();
  // Hello body WITHOUT the trailing version byte — exactly what a wire-v1
  // client sends. The server must keep serving it, untraced, and admin
  // methods must still work on the now-identified session.
  std::vector<uint8_t> hello;
  Encoder henc(&hello);
  henc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
  henc.PutI64(0);
  henc.PutU64(7);  // client id
  henc.PutU8(0);   // consistency mode
  std::mutex mu;
  ASSERT_TRUE(
      sock.WriteFrame(mu, wire::FrameType::kRequest, 1, hello).ok());
  wire::FrameHeader header;
  std::vector<uint8_t> resp;
  ASSERT_TRUE(sock.ReadFrame(&header, &resp).ok());
  ASSERT_EQ(header.type, wire::FrameType::kResponse);
  EXPECT_FALSE(header.traced);  // v1 peers must never see the traced bit

  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(0);
  const std::string text = RawAdminCall(sock, wire::Method::kMetrics, args, 2);
  EXPECT_NE(text.find("idba_transport_requests_total"), std::string::npos);
  const std::string locks = RawAdminCall(sock, wire::Method::kLocks, {}, 3);
  EXPECT_NE(locks.find("\"lock_table\""), std::string::npos);
  const std::string caches = RawAdminCall(sock, wire::Method::kCaches, {}, 4);
  EXPECT_NE(caches.find("\"page\""), std::string::npos);
}

TEST_F(AdminIntrospectTest, AdminMethodsExemptFromAdmission) {
  // A server with max_inflight=0-but-queue-bound still answers admin calls:
  // they are exempt from shedding so operators can see INTO an overloaded
  // server. (Exemption list covers kMetrics/kLocks/kCaches.)
  deployment_ = std::make_unique<Deployment>(DeploymentOptions{});
  TransportServerOptions opts;
  opts.max_request_queue = 1;
  opts.max_inflight = 1;
  transport_ = std::make_unique<TransportServer>(
      &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
      &deployment_->meter(), opts);
  ASSERT_TRUE(transport_->Start().ok());
  Socket sock = RawConnect();
  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(0);
  const std::string text = RawAdminCall(sock, wire::Method::kMetrics, args, 1);
  EXPECT_NE(text.find("idba_"), std::string::npos);
}

TEST_F(AdminIntrospectTest, FlightDumpPreHelloShowsTransportThreads) {
  StartServer();
  // Generate a little traffic so the reactor rings hold frame events.
  auto client =
      RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100);
  ASSERT_TRUE(client.ok());
  (void)client.value()->Begin();

  Socket sock = RawConnect();
  const std::string dump = RawAdminCall(sock, wire::Method::kFlight, {}, 1);
  EXPECT_NE(dump.find("flightdump v1"), std::string::npos);
  EXPECT_NE(dump.find("role=io-loop"), std::string::npos) << dump;
  EXPECT_NE(dump.find("type=frame.in"), std::string::npos) << dump;
  EXPECT_NE(dump.find("end"), std::string::npos);
}

TEST_F(AdminIntrospectTest, ProfileStartDumpStopRoundTrip) {
  StartServer();
  Socket sock = RawConnect();

  // action 0: status while stopped.
  std::vector<uint8_t> args;
  Encoder status_enc(&args);
  status_enc.PutU8(0);
  std::string status = RawAdminCall(sock, wire::Method::kProfile, args, 1);
  EXPECT_NE(status.find("stopped"), std::string::npos) << status;

  // action 1 + hz: start.
  args.clear();
  Encoder start_enc(&args);
  start_enc.PutU8(1);
  start_enc.PutU32(200);
  status = RawAdminCall(sock, wire::Method::kProfile, args, 2);
  EXPECT_NE(status.find("running hz=200"), std::string::npos) << status;

  // Traffic while sampling, so worker/io-loop threads are on-CPU at times.
  auto client =
      RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) (void)client.value()->Begin();

  // action 3: folded dump (may legitimately be empty if every tick landed
  // while all threads slept, so only check it parses as folded lines).
  args.clear();
  Encoder dump_enc(&args);
  dump_enc.PutU8(3);
  const std::string folded = RawAdminCall(sock, wire::Method::kProfile, args, 3);
  if (!folded.empty()) {
    EXPECT_NE(folded.find_first_of('\n'), std::string::npos);
  }

  // action 2: stop, idempotently.
  args.clear();
  Encoder stop_enc(&args);
  stop_enc.PutU8(2);
  status = RawAdminCall(sock, wire::Method::kProfile, args, 4);
  EXPECT_NE(status.find("stopped"), std::string::npos) << status;
  status = RawAdminCall(sock, wire::Method::kProfile, args, 5);
  EXPECT_NE(status.find("stopped"), std::string::npos) << status;
}

TEST_F(AdminIntrospectTest, ServerSideRpcHistogramsAppearAfterTraffic) {
  StartServer();
  auto client =
      RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100);
  ASSERT_TRUE(client.ok());
  (void)client.value()->Begin();

  Socket sock = RawConnect();
  std::vector<uint8_t> args;
  Encoder enc(&args);
  enc.PutU8(0);
  const std::string text = RawAdminCall(sock, wire::Method::kMetrics, args, 1);
  tools::PromSamples samples = tools::ParsePromText(text);
  // The Hello and Begin the client just issued must have recorded
  // server-side per-opcode histograms.
  EXPECT_GE(tools::SampleOr0(samples, "idba_rpc_Hello_total_us_count"), 1.0);
  EXPECT_GE(tools::SampleOr0(samples, "idba_rpc_Begin_total_us_count"), 1.0);
}

}  // namespace
}  // namespace idba
