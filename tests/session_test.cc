#include "core/session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 4;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(SessionTest, ViewLifecycle) {
  auto session = deployment_->NewSession(100);
  ActiveView* v = session->CreateView("main");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(session->FindView("main"), v);
  EXPECT_EQ(session->FindView("other"), nullptr);
  EXPECT_EQ(session->views().size(), 1u);
  ASSERT_TRUE(session->CloseView("main").ok());
  EXPECT_EQ(session->FindView("main"), nullptr);
  EXPECT_EQ(session->CloseView("main").code(), StatusCode::kNotFound);
}

TEST_F(SessionTest, SessionTeardownReleasesDisplayLocks) {
  {
    auto session = deployment_->NewSession(100);
    ActiveView* v = session->CreateView("main");
    ASSERT_TRUE(
        v->Materialize(deployment_->display_schema().Find(dcs_.color_coded_link),
                       {db_.link_oids[0]})
            .ok());
    EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[0]), 1u);
  }
  EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[0]), 0u);
}

TEST_F(SessionTest, PumpThreadDeliversNotifications) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("main");
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(
      view->Materialize(deployment_->display_schema().Find(dcs_.color_coded_link),
                        {oid})
          .ok());
  viewer->StartPump();

  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.9)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->client().Commit(t).ok());

  // The pump thread should refresh the view without any explicit pump.
  for (int i = 0; i < 100 && view->refreshes() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  viewer->StopPump();
  EXPECT_EQ(view->refreshes(), 1u);
}

TEST_F(SessionTest, StartPumpIsIdempotent) {
  auto session = deployment_->NewSession(100);
  session->StartPump();
  session->StartPump();
  session->StopPump();
  session->StopPump();
}

TEST_F(SessionTest, MultipleSessionsCoexist) {
  auto s1 = deployment_->NewSession(100);
  auto s2 = deployment_->NewSession(101);
  auto s3 = deployment_->NewSession(102);
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  for (auto* s : {s1.get(), s2.get(), s3.get()}) {
    ActiveView* v = s->CreateView("v");
    ASSERT_TRUE(v->Materialize(dc, {db_.link_oids[0]}).ok());
  }
  EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[0]), 3u);
}

}  // namespace
}  // namespace idba
