#include "core/display_schema.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

class DisplaySchemaTest : public ::testing::Test {
 protected:
  DisplaySchemaTest() {
    link_ = catalog_.DefineClass("Link").value();
    EXPECT_TRUE(catalog_.AddAttribute(link_, "From", ValueType::kOid).ok());
    EXPECT_TRUE(catalog_.AddAttribute(link_, "To", ValueType::kOid).ok());
    EXPECT_TRUE(
        catalog_.AddAttribute(link_, "Utilization", ValueType::kDouble).ok());
  }
  SchemaCatalog catalog_;
  ClassId link_;
};

TEST_F(DisplaySchemaTest, Figure1ColorCodedLinkValidates) {
  DisplayClassDef def("ColorCodedLink", link_);
  def.Project("From", "From")
      .Project("To", "To")
      .Derive("Color",
              [](const std::vector<DatabaseObject>&) { return Value("red"); })
      .Gui("X1", Value(0.0))
      .Gui("Y1", Value(0.0));
  DisplaySchema schema;
  auto id = schema.Define(std::move(def), catalog_);
  ASSERT_TRUE(id.ok());
  const DisplayClassDef* found = schema.Find(*id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name(), "ColorCodedLink");
  EXPECT_EQ(found->projections().size(), 2u);
  EXPECT_EQ(found->derivations().size(), 1u);
  EXPECT_EQ(found->gui_attributes().size(), 2u);
  EXPECT_EQ(schema.FindByName("ColorCodedLink"), found);
}

TEST_F(DisplaySchemaTest, UnknownSourceClassRejected) {
  DisplayClassDef def("Bad", 999);
  DisplaySchema schema;
  EXPECT_EQ(schema.Define(std::move(def), catalog_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(DisplaySchemaTest, UnknownProjectedAttributeRejected) {
  DisplayClassDef def("Bad", link_);
  def.Project("Color", "NoSuchAttribute");
  DisplaySchema schema;
  EXPECT_EQ(schema.Define(std::move(def), catalog_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(DisplaySchemaTest, NonZeroSourceIndexSkipsStaticValidation) {
  // Multi-source display classes project from other associated objects,
  // which are validated at refresh time, not definition time.
  DisplayClassDef def("PathEnd", link_);
  def.Project("FarUtilization", "Utilization", /*source_index=*/3);
  DisplaySchema schema;
  EXPECT_TRUE(schema.Define(std::move(def), catalog_).ok());
}

TEST_F(DisplaySchemaTest, DuplicateAttributeNamesRejected) {
  DisplayClassDef def("Bad", link_);
  def.Project("Utilization", "Utilization")
      .Gui("Utilization", Value(0.0));
  DisplaySchema schema;
  EXPECT_EQ(schema.Define(std::move(def), catalog_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DisplaySchemaTest, DuplicateClassNameRejected) {
  DisplaySchema schema;
  ASSERT_TRUE(schema.Define(DisplayClassDef("D", link_), catalog_).ok());
  EXPECT_EQ(schema.Define(DisplayClassDef("D", link_), catalog_).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DisplaySchemaTest, MultipleClassesGetDistinctIds) {
  DisplaySchema schema;
  auto a = schema.Define(DisplayClassDef("A", link_), catalog_);
  auto b = schema.Define(DisplayClassDef("B", link_), catalog_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(schema.Find(0), nullptr);
  EXPECT_EQ(schema.Find(99), nullptr);
}

}  // namespace
}  // namespace idba
