#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

class DlmDlcTest : public ::testing::Test {
 protected:
  void Init(DlmOptions dlm_opts = {}) {
    DeploymentOptions opts;
    opts.dlm = dlm_opts;
    opts.server.integrated_display_locks = dlm_opts.integrated;
    deployment_ = std::make_unique<Deployment>(opts);
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }

  /// Updates a link's utilization through a writer client.
  void UpdateLink(ClientApi* writer, Oid oid, double util) {
    const SchemaCatalog& cat = writer->schema();
    TxnId t = writer->Begin();
    DatabaseObject link = writer->Read(t, oid).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(util)).ok());
    ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
    ASSERT_TRUE(writer->Commit(t).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(DlmDlcTest, LockTableTracksHolders) {
  Init();
  auto s1 = deployment_->NewSession(100);
  auto s2 = deployment_->NewSession(101);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(deployment_->dlm().Lock(100, oid, 0).ok());
  ASSERT_TRUE(deployment_->dlm().Lock(101, oid, 0).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 2u);
  ASSERT_TRUE(deployment_->dlm().Unlock(100, oid, 0).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  deployment_->dlm().ReleaseClient(101);
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
}

TEST_F(DlmDlcTest, PostCommitNotifyReachesHolder) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  UpdateLink(&writer->client(), oid, 0.95);
  EXPECT_EQ(viewer->client().inbox().pending(), 1u);
  EXPECT_EQ(viewer->PumpOnce(), 1);
  EXPECT_EQ(view->refreshes(), 1u);
  EXPECT_EQ(deployment_->dlm().update_notifications(), 1u);

  auto dobs = view->display_objects();
  ASSERT_EQ(dobs.size(), 1u);
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.95));
  EXPECT_EQ(dobs[0]->Get("Color").value(), Value("red"));
}

TEST_F(DlmDlcTest, NonHoldersGetNoNotification) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(view->Materialize(dc, {db_.link_oids[0]}).ok());

  // Update a DIFFERENT link: no display lock, no notification.
  UpdateLink(&writer->client(), db_.link_oids[1], 0.5);
  EXPECT_EQ(viewer->client().inbox().pending(), 0u);
}

TEST_F(DlmDlcTest, OneNotificationPerClientPerCommitRegardlessOfDisplays) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  const DisplayClassDef* color =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  const DisplayClassDef* width =
      deployment_->display_schema().Find(dcs_.width_coded_link);
  Oid oid = db_.link_oids[0];
  // Two displays of the same client show the same object (§4.2.1).
  ActiveView* v1 = viewer->CreateView("color");
  ActiveView* v2 = viewer->CreateView("width");
  ASSERT_TRUE(v1->Materialize(color, {oid}).ok());
  ASSERT_TRUE(v2->Materialize(width, {oid}).ok());

  // Only ONE remote lock request went to the DLM.
  EXPECT_EQ(viewer->dlc().remote_lock_requests(), 1u);
  EXPECT_EQ(viewer->dlc().local_lock_requests(), 2u);

  UpdateLink(&writer->client(), oid, 0.9);
  // ONE message arrived; the DLC fanned it out to both displays.
  EXPECT_EQ(viewer->client().inbox().pending(), 1u);
  viewer->PumpOnce();
  EXPECT_EQ(viewer->dlc().local_dispatches(), 2u);
  EXPECT_EQ(v1->refreshes(), 1u);
  EXPECT_EQ(v2->refreshes(), 1u);
}

TEST_F(DlmDlcTest, NonHierarchicalBaselineSendsPerDisplayMessages) {
  Init();
  auto writer = deployment_->NewSession(101);
  auto viewer = deployment_->NewSession(100, {}, DlcOptions{.hierarchical = false});
  const DisplayClassDef* color =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  const DisplayClassDef* width =
      deployment_->display_schema().Find(dcs_.width_coded_link);
  Oid oid = db_.link_oids[0];
  ActiveView* v1 = viewer->CreateView("color");
  ActiveView* v2 = viewer->CreateView("width");
  ASSERT_TRUE(v1->Materialize(color, {oid}).ok());
  ASSERT_TRUE(v2->Materialize(width, {oid}).ok());

  // Every display registered separately at the DLM...
  EXPECT_EQ(viewer->dlc().remote_lock_requests(), 2u);
  UpdateLink(&writer->client(), oid, 0.9);
  // ...and each receives its own notification message.
  EXPECT_EQ(viewer->client().inbox().pending(), 2u);
  viewer->PumpOnce();
  EXPECT_EQ(v1->refreshes(), 1u);
  EXPECT_EQ(v2->refreshes(), 1u);
}

TEST_F(DlmDlcTest, ReleasingLastLocalLockReleasesRemote) {
  Init();
  auto viewer = deployment_->NewSession(100);
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ActiveView* v1 = viewer->CreateView("a");
  ActiveView* v2 = viewer->CreateView("b");
  auto d1 = v1->Materialize(dc, {oid});
  auto d2 = v2->Materialize(dc, {oid});
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  ASSERT_TRUE(v1->Dismiss(d1.value()->id()).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);  // v2 still needs it
  ASSERT_TRUE(v2->Dismiss(d2.value()->id()).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
}

TEST_F(DlmDlcTest, EagerShippingRefreshesWithoutFetchRpc) {
  Init(DlmOptions{.eager_shipping = true});
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  uint64_t rpcs_before = viewer->client().rpcs_issued();
  UpdateLink(&writer->client(), oid, 0.88);
  viewer->PumpOnce();
  EXPECT_EQ(view->refreshes(), 1u);
  // The image rode along with the notification: no re-fetch round trip.
  EXPECT_EQ(viewer->client().rpcs_issued(), rpcs_before);
  auto dobs = view->display_objects();
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.88));
}

TEST_F(DlmDlcTest, LazyProtocolRefetches) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  uint64_t rpcs_before = viewer->client().rpcs_issued();
  UpdateLink(&writer->client(), oid, 0.88);
  viewer->PumpOnce();
  // The cached copy was invalidated by the callback; the refresh needed a
  // fetch RPC — the paper's 3-message lazy path.
  EXPECT_EQ(viewer->client().rpcs_issued(), rpcs_before + 1);
}

TEST_F(DlmDlcTest, EarlyNotifyMarksAndResolves) {
  Init(DlmOptions{.protocol = NotifyProtocol::kEarlyNotify});
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  // Writer takes the X lock (intent) but has not committed yet.
  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.5)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());

  viewer->PumpOnce();
  EXPECT_EQ(view->intent_marks(), 1u);
  EXPECT_TRUE(view->IsSourceMarked(oid));
  EXPECT_TRUE(view->display_objects()[0]->marked_in_update());

  // Commit resolves the mark and refreshes.
  ASSERT_TRUE(writer->client().Commit(t).ok());
  viewer->PumpOnce();
  EXPECT_FALSE(view->IsSourceMarked(oid));
  EXPECT_FALSE(view->display_objects()[0]->marked_in_update());
  EXPECT_EQ(view->refreshes(), 1u);
}

TEST_F(DlmDlcTest, EarlyNotifyAbortUnmarksWithoutRefresh) {
  Init(DlmOptions{.protocol = NotifyProtocol::kEarlyNotify});
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.5)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  viewer->PumpOnce();
  EXPECT_TRUE(view->IsSourceMarked(oid));

  ASSERT_TRUE(writer->client().Abort(t).ok());
  viewer->PumpOnce();
  EXPECT_FALSE(view->display_objects()[0]->marked_in_update());
  EXPECT_EQ(view->refreshes(), 0u);  // nothing committed, nothing refreshed
}

TEST_F(DlmDlcTest, WriterDoesNotGetIntentNotifyForItself) {
  Init(DlmOptions{.protocol = NotifyProtocol::kEarlyNotify});
  auto writer = deployment_->NewSession(101);
  ActiveView* view = writer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.5)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  writer->PumpOnce();
  EXPECT_FALSE(view->IsSourceMarked(oid));  // you know about your own edit
  ASSERT_TRUE(writer->client().Commit(t).ok());
}

TEST_F(DlmDlcTest, IntegratedModeRecordsDLocksInServerLockManager) {
  Init(DlmOptions{.integrated = true});
  auto viewer = deployment_->NewSession(100);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());
  EXPECT_EQ(deployment_->server().lock_manager().DisplayLockHolders(oid).size(),
            1u);
  view->Close();
  EXPECT_EQ(deployment_->server().lock_manager().DisplayLockHolders(oid).size(),
            0u);
}

TEST_F(DlmDlcTest, BatchedCommitYieldsSingleNotification) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ASSERT_TRUE(view->Materialize(dc, {db_.link_oids[0]}).ok());
  ASSERT_TRUE(view->Materialize(dc, {db_.link_oids[1]}).ok());

  // One transaction updates both displayed links.
  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  for (int i = 0; i < 2; ++i) {
    DatabaseObject link = writer->client().Read(t, db_.link_oids[i]).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.7)).ok());
    ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  }
  ASSERT_TRUE(writer->client().Commit(t).ok());

  EXPECT_EQ(viewer->client().inbox().pending(), 1u);  // batched
  viewer->PumpOnce();
  EXPECT_EQ(view->refreshes(), 2u);  // but both elements refreshed
}

}  // namespace
}  // namespace idba
