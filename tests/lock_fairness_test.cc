// Lock manager fairness and bookkeeping details beyond the basic
// compatibility tests: FIFO waiting, counters, try-lock edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "txn/lock_manager.h"

namespace idba {
namespace {

TEST(LockFairnessTest, FifoOrderAmongConflictingWaiters) {
  LockManager lm;
  Oid oid(1);
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kX).ok());

  std::vector<int> grant_order;
  std::mutex order_mu;
  std::atomic<int> queued{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      // Stagger arrival so queue order is deterministic.
      while (queued.load() != i) std::this_thread::yield();
      queued.fetch_add(1);
      ASSERT_TRUE(lm.Lock(10 + i, oid, LockMode::kX).ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        grant_order.push_back(i);
      }
      ASSERT_TRUE(lm.Unlock(10 + i, oid).ok());
    });
  }
  while (queued.load() < 4) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(lm.Unlock(1, oid).ok());
  for (auto& t : waiters) t.join();
  // X waiters are granted in arrival order.
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(lm.waits(), 4u);
}

TEST(LockFairnessTest, EarlierExclusiveWaiterBlocksLaterSharedRequest) {
  // Without FIFO fairness, a stream of S requests could starve a queued X.
  LockManager lm;
  Oid oid(1);
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kS).ok());
  std::atomic<bool> x_granted{false};
  std::thread x_waiter([&] {
    ASSERT_TRUE(lm.Lock(2, oid, LockMode::kX).ok());
    x_granted = true;
    ASSERT_TRUE(lm.Unlock(2, oid).ok());
  });
  // Give the X request time to queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // A *new* S request must not jump the queued X (TryLock refuses).
  EXPECT_TRUE(lm.TryLock(3, oid, LockMode::kS).IsBusy());
  EXPECT_FALSE(x_granted.load());
  ASSERT_TRUE(lm.Unlock(1, oid).ok());
  x_waiter.join();
  EXPECT_TRUE(x_granted.load());
  // Queue empty now: S freely granted.
  EXPECT_TRUE(lm.TryLock(3, oid, LockMode::kS).ok());
}

TEST(LockFairnessTest, CountersTrackActivity) {
  LockManager lm;
  Oid oid(1);
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kS).ok());
  uint64_t grants_before = lm.grants();
  ASSERT_TRUE(lm.Lock(2, oid, LockMode::kS).ok());
  EXPECT_EQ(lm.grants(), grants_before + 1);
  EXPECT_EQ(lm.waits(), 0u);
  EXPECT_EQ(lm.deadlocks(), 0u);
  EXPECT_EQ(lm.timeouts(), 0u);
}

TEST(LockFairnessTest, TryLockNeverQueues) {
  LockManager lm;
  Oid oid(1);
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kX).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(lm.TryLock(2, oid, LockMode::kX).IsBusy());
  }
  EXPECT_EQ(lm.waits(), 0u);
  // The failed attempts left no residue: unlocking owner 1 frees the oid.
  ASSERT_TRUE(lm.Unlock(1, oid).ok());
  EXPECT_EQ(lm.LockedObjectCount(), 0u);
}

TEST(LockFairnessTest, UnlockErrorsAreDistinct) {
  LockManager lm;
  EXPECT_EQ(lm.Unlock(1, Oid(9)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(lm.Lock(1, Oid(9), LockMode::kS).ok());
  EXPECT_EQ(lm.Unlock(2, Oid(9)).code(), StatusCode::kNotFound);
  EXPECT_TRUE(lm.Unlock(1, Oid(9)).ok());
}

TEST(LockFairnessTest, IntentionModesCompose) {
  LockManager lm;
  Oid table(100);
  // Classic hierarchy use: IS+IX coexist, S joins IS, X excluded.
  ASSERT_TRUE(lm.Lock(1, table, LockMode::kIS).ok());
  ASSERT_TRUE(lm.Lock(2, table, LockMode::kIX).ok());
  ASSERT_TRUE(lm.Lock(3, table, LockMode::kIS).ok());
  EXPECT_TRUE(lm.TryLock(4, table, LockMode::kX).IsBusy());
  // IS is compatible with SIX: owner 2 may upgrade IX -> SIX in place...
  EXPECT_TRUE(lm.TryLock(2, table, LockMode::kSIX).ok());
  EXPECT_EQ(lm.HeldMode(2, table), LockMode::kSIX);
  // ...but not to X while IS holders remain.
  EXPECT_TRUE(lm.TryLock(2, table, LockMode::kX).IsBusy());
  lm.ReleaseAll(1);
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.Lock(2, table, LockMode::kX).ok());
  EXPECT_EQ(lm.HeldMode(2, table), LockMode::kX);
}

TEST(LockFairnessTest, SupremumUpgradePreservedAcrossRequests) {
  LockManager lm;
  Oid oid(1);
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kIX).ok());
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kS).ok());  // sup = SIX
  EXPECT_EQ(lm.HeldMode(1, oid), LockMode::kSIX);
  // Downgrade requests are no-ops (sup(SIX, IS) = SIX).
  ASSERT_TRUE(lm.Lock(1, oid, LockMode::kIS).ok());
  EXPECT_EQ(lm.HeldMode(1, oid), LockMode::kSIX);
}

}  // namespace
}  // namespace idba
