#!/bin/sh
# Smoke test: the runtime-health layer against a live idba_serve.
#
#   idba_profile_smoke.sh <idba_serve> <idba_stat>
#
# Starts the server on an ephemeral port, takes a short profile through
# `idba_stat --profile`, checks the folded stacks carry thread-role tags,
# and fetches a flight dump through `idba_stat --flight`.
set -eu

SERVE="$1"
STAT="$2"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

"$SERVE" --port 0 --slow-rpc-ms 0 >"$WORKDIR/serve.out" 2>&1 &
SERVER_PID=$!

# The bound port is printed on the first stdout line.
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9][0-9]*\).*/\1/p' \
         "$WORKDIR/serve.out" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/serve.out"; \
    echo "FAIL: idba_serve exited early"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: could not find bound port"; exit 1; }

# Background load while the profiler runs, so io-loop threads have frames
# to show: a watch loop hammers the METRICS RPC for the whole window.
"$STAT" --connect "127.0.0.1:$PORT" --watch 1 --watch-count 4 \
  >/dev/null 2>&1 &
LOAD_PID=$!

"$STAT" --connect "127.0.0.1:$PORT" --profile 2 --profile-hz 200 \
  >"$WORKDIR/profile.folded" 2>"$WORKDIR/profile.err" || {
  cat "$WORKDIR/profile.err"
  echo "FAIL: idba_stat --profile failed"
  exit 1
}
wait "$LOAD_PID" 2>/dev/null || true

[ -s "$WORKDIR/profile.folded" ] || {
  echo "FAIL: profile window produced no folded stacks"; exit 1; }
# Wall-clock sampling covers blocked threads too, so both thread families
# must appear as folded-stack role tags.
grep -q '^io-loop' "$WORKDIR/profile.folded" || {
  echo "FAIL: no io-loop samples in folded output:"
  cat "$WORKDIR/profile.folded"
  exit 1
}
grep -q '^worker' "$WORKDIR/profile.folded" || {
  echo "FAIL: no worker samples in folded output:"
  cat "$WORKDIR/profile.folded"
  exit 1
}
# Folded lines are "role;frames... count".
grep -Eq '^[^ ]+ [0-9]+$' "$WORKDIR/profile.folded" || {
  echo "FAIL: folded output is not 'stack count' lines:"
  cat "$WORKDIR/profile.folded"
  exit 1
}

# Flight dump over the admin RPC: header, thread sections, trailer.
"$STAT" --connect "127.0.0.1:$PORT" --flight "$WORKDIR/flight.dump" \
  2>/dev/null
grep -q '^flightdump v1' "$WORKDIR/flight.dump" || {
  echo "FAIL: flight dump missing header"; cat "$WORKDIR/flight.dump"
  exit 1
}
grep -q 'role=io-loop' "$WORKDIR/flight.dump" || {
  echo "FAIL: flight dump lists no io-loop thread"; exit 1; }
grep -q '^end$' "$WORKDIR/flight.dump" || {
  echo "FAIL: flight dump missing trailer"; exit 1; }

echo "PASS"
