#include "common/rng.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.3);
}

TEST(RngTest, SplitIsIndependent) {
  Rng a(77);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(3);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(3);
  ZipfGenerator zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfTest, AllIndicesReachable) {
  Rng rng(9);
  ZipfGenerator zipf(4, 1.2);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 10000; ++i) seen[zipf.Next(rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace idba
