// Tests for the runtime-health layer (obs/health.h, obs/watchdog.h):
// thread-slot registration and snapshots, epoch/working stamps, phase
// tagging, cross-thread symbolized stack capture, and the stall watchdog
// end-to-end against a real EventLoop with an injected stall.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "net/event_loop.h"
#include "obs/health.h"
#include "obs/watchdog.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

obs::ThreadSnapshot* FindRole(std::vector<obs::ThreadSnapshot>& snaps,
                              const std::string& role_prefix) {
  for (auto& s : snaps) {
    if (s.role.compare(0, role_prefix.size(), role_prefix) == 0) return &s;
  }
  return nullptr;
}

TEST(HealthTest, RegisterSnapshotUnregister) {
  std::atomic<bool> stop{false};
  std::atomic<int> slot{-1};
  std::thread t([&] {
    slot.store(obs::RegisterThisThread("unit-worker"));
    obs::SetThreadWorking(true);
    obs::HealthEpochBump();
    while (!stop.load()) std::this_thread::sleep_for(1ms);
    obs::SetThreadWorking(false);
    obs::UnregisterThisThread();
  });
  while (slot.load() < 0) std::this_thread::sleep_for(1ms);
  ASSERT_GE(slot.load(), 0);

  auto snaps = obs::SnapshotThreads();
  auto* s = FindRole(snaps, "unit-worker");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->slot, slot.load());
  EXPECT_TRUE(s->working);
  EXPECT_GT(s->epoch, 0u);
  EXPECT_TRUE(s->samplable);

  stop.store(true);
  t.join();
  snaps = obs::SnapshotThreads();
  EXPECT_EQ(FindRole(snaps, "unit-worker"), nullptr);
}

TEST(HealthTest, ReRegisterRenamesInPlace) {
  std::atomic<bool> renamed{false};
  std::atomic<bool> stop{false};
  std::thread t([&] {
    int first = obs::RegisterThisThread("first-name");
    int second = obs::RegisterThisThread("second-name");
    EXPECT_EQ(first, second);
    renamed.store(true);
    while (!stop.load()) std::this_thread::sleep_for(1ms);
    obs::UnregisterThisThread();
  });
  while (!renamed.load()) std::this_thread::sleep_for(1ms);
  auto snaps = obs::SnapshotThreads();
  EXPECT_EQ(FindRole(snaps, "first-name"), nullptr);
  EXPECT_NE(FindRole(snaps, "second-name"), nullptr);
  stop.store(true);
  t.join();
}

TEST(HealthTest, ScopedPhaseAppearsInSnapshotRole) {
  std::atomic<int> stage{0};
  std::thread t([&] {
    obs::RegisterThisThread("phase-thread");
    {
      obs::ScopedThreadPhase phase("flush-leader");
      stage.store(1);
      while (stage.load() == 1) std::this_thread::sleep_for(1ms);
    }
    stage.store(3);
    while (stage.load() == 3) std::this_thread::sleep_for(1ms);
    obs::UnregisterThisThread();
  });
  while (stage.load() != 1) std::this_thread::sleep_for(1ms);
  auto snaps = obs::SnapshotThreads();
  auto* s = FindRole(snaps, "phase-thread");
  ASSERT_NE(s, nullptr);
  EXPECT_NE(s->role.find("/flush-leader"), std::string::npos);
  stage.store(2);
  while (stage.load() != 3) std::this_thread::sleep_for(1ms);
  snaps = obs::SnapshotThreads();
  s = FindRole(snaps, "phase-thread");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->role.find('/'), std::string::npos);
  stage.store(4);
  t.join();
}

TEST(HealthTest, CaptureSymbolizedStackOfLiveThread) {
  std::atomic<int> slot{-1};
  std::atomic<bool> stop{false};
  std::thread t([&] {
    slot.store(obs::RegisterThisThread("capture-target"));
    while (!stop.load()) std::this_thread::sleep_for(1ms);
    obs::UnregisterThisThread();
  });
  while (slot.load() < 0) std::this_thread::sleep_for(1ms);

  // The target spends its life in sleep_for; the capture signal interrupts
  // it wherever it is, so we only require a non-empty multi-frame stack.
  std::string stack = obs::CaptureSymbolizedStack(slot.load());
  EXPECT_NE(stack.find("#0"), std::string::npos) << stack;
  EXPECT_NE(stack.find('\n'), std::string::npos) << stack;

  stop.store(true);
  t.join();
  // Capturing a dead slot fails soft rather than crashing.
  std::string gone = obs::CaptureSymbolizedStack(slot.load());
  EXPECT_EQ(gone, "<no stack>");
}

TEST(WatchdogTest, IdleEventLoopIsNotFlagged) {
  EventLoop::Options lopts;
  lopts.role = "idle-loop";
  EventLoop loop(lopts);
  ASSERT_TRUE(loop.Start().ok());

  obs::WatchdogOptions wopts;
  wopts.threshold_ms = 50;
  obs::Watchdog dog(wopts);
  dog.Start();
  // The loop blocks in epoll_wait (working=false) — never a stall, even
  // though its epoch is frozen far past the threshold.
  std::this_thread::sleep_for(400ms);
  EXPECT_EQ(dog.stalls(), 0u);
  dog.Stop();
  loop.Stop();
}

TEST(WatchdogTest, DetectsInjectedStallWithStackAndCounter) {
  Counter* stalls_total = GlobalMetrics().GetCounter("health.stalls_total");
  const uint64_t stalls_before = stalls_total->Get();

  EventLoop::Options lopts;
  lopts.role = "stall-loop";
  EventLoop loop(lopts);
  ASSERT_TRUE(loop.Start().ok());

  std::mutex mu;
  std::condition_variable cv;
  bool reported = false;
  std::string reported_role;
  std::string reported_stack;

  obs::WatchdogOptions wopts;
  wopts.threshold_ms = 300;
  wopts.on_stall = [&](const obs::ThreadSnapshot& snap,
                       const std::string& stack) {
    std::lock_guard<std::mutex> lk(mu);
    reported = true;
    reported_role = snap.role;
    reported_stack = stack;
    cv.notify_all();
  };
  obs::Watchdog dog(wopts);
  dog.Start();

  const auto injected_at = std::chrono::steady_clock::now();
  loop.InjectStallForTest(900);

  {
    std::unique_lock<std::mutex> lk(mu);
    // The acceptance bound is detection within 2x threshold; allow
    // sanitizer-grade scheduling slack on top before calling it a failure.
    ASSERT_TRUE(cv.wait_for(lk, 3s, [&] { return reported; }));
  }
  const auto detect_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - injected_at)
                             .count();
  EXPECT_LE(detect_ms, 2 * wopts.threshold_ms + 1500) << detect_ms;

  EXPECT_GE(dog.stalls(), 1u);
  EXPECT_GT(stalls_total->Get(), stalls_before);
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(reported_role.compare(0, 10, "stall-loop"), 0) << reported_role;
    EXPECT_NE(reported_stack.find("#0"), std::string::npos) << reported_stack;
  }

  // One episode, one report: no re-report while the same stall persists.
  const uint64_t episodes = dog.stalls();
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(dog.stalls(), episodes);

  dog.Stop();
  loop.Stop();
}

}  // namespace
}  // namespace idba
