#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace idba {
namespace {

constexpr Oid kObj{1};

// --- Compatibility matrix (paper-critical: D compatible with everything) --

struct CompatCase {
  LockMode held;
  LockMode requested;
  bool compatible;
};

class CompatibilityMatrix : public ::testing::TestWithParam<CompatCase> {};

TEST_P(CompatibilityMatrix, MatchesGrayReuterPlusDisplayMode) {
  EXPECT_EQ(LockCompatible(GetParam().held, GetParam().requested),
            GetParam().compatible);
}

INSTANTIATE_TEST_SUITE_P(
    Classical, CompatibilityMatrix,
    ::testing::Values(
        CompatCase{LockMode::kIS, LockMode::kIS, true},
        CompatCase{LockMode::kIS, LockMode::kIX, true},
        CompatCase{LockMode::kIS, LockMode::kS, true},
        CompatCase{LockMode::kIS, LockMode::kSIX, true},
        CompatCase{LockMode::kIS, LockMode::kX, false},
        CompatCase{LockMode::kIX, LockMode::kIX, true},
        CompatCase{LockMode::kIX, LockMode::kS, false},
        CompatCase{LockMode::kIX, LockMode::kSIX, false},
        CompatCase{LockMode::kIX, LockMode::kX, false},
        CompatCase{LockMode::kS, LockMode::kS, true},
        CompatCase{LockMode::kS, LockMode::kIX, false},
        CompatCase{LockMode::kS, LockMode::kX, false},
        CompatCase{LockMode::kSIX, LockMode::kIS, true},
        CompatCase{LockMode::kSIX, LockMode::kS, false},
        CompatCase{LockMode::kSIX, LockMode::kX, false},
        CompatCase{LockMode::kX, LockMode::kIS, false},
        CompatCase{LockMode::kX, LockMode::kS, false},
        CompatCase{LockMode::kX, LockMode::kX, false}));

INSTANTIATE_TEST_SUITE_P(
    DisplayMode, CompatibilityMatrix,
    ::testing::Values(
        CompatCase{LockMode::kD, LockMode::kD, true},
        CompatCase{LockMode::kD, LockMode::kX, true},   // the defining property
        CompatCase{LockMode::kX, LockMode::kD, true},   // ...in both directions
        CompatCase{LockMode::kD, LockMode::kS, true},
        CompatCase{LockMode::kS, LockMode::kD, true},
        CompatCase{LockMode::kD, LockMode::kIX, true},
        CompatCase{LockMode::kSIX, LockMode::kD, true}));

TEST(LockSupremumTest, LatticeJoins) {
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kS), LockMode::kS);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kX), LockMode::kX);
  EXPECT_EQ(LockSupremum(LockMode::kIS, LockMode::kS), LockMode::kS);
  EXPECT_EQ(LockSupremum(LockMode::kIX, LockMode::kS), LockMode::kSIX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(LockSupremum(LockMode::kNL, LockMode::kX), LockMode::kX);
}

// --- Basic grant/conflict behavior ---------------------------------------

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  EXPECT_TRUE(lm.Lock(2, kObj, LockMode::kS).ok());
  EXPECT_EQ(lm.Holders(kObj).size(), 2u);
}

TEST(LockManagerTest, TryLockConflictIsBusy) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kX).ok());
  EXPECT_TRUE(lm.TryLock(2, kObj, LockMode::kS).IsBusy());
  EXPECT_TRUE(lm.TryLock(2, kObj, LockMode::kX).IsBusy());
}

TEST(LockManagerTest, ReacquireSameModeIsIdempotent) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  EXPECT_EQ(lm.HeldMode(1, kObj), LockMode::kS);
  ASSERT_TRUE(lm.Unlock(1, kObj).ok());
  EXPECT_EQ(lm.HeldMode(1, kObj), LockMode::kNL);
}

TEST(LockManagerTest, UpgradeSToXWhenAlone) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kX).ok());
  EXPECT_EQ(lm.HeldMode(1, kObj), LockMode::kX);
}

TEST(LockManagerTest, UnlockWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kX).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Lock(2, kObj, LockMode::kS).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  ASSERT_TRUE(lm.Unlock(1, kObj).ok());
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, Oid(1), LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(1, Oid(2), LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(1, Oid(3), LockMode::kIX).ok());
  EXPECT_EQ(lm.LockedObjectCount(), 3u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.LockedObjectCount(), 0u);
  EXPECT_TRUE(lm.TryLock(2, Oid(1), LockMode::kX).ok());
}

TEST(LockManagerTest, WaitTimesOut) {
  LockManager lm(LockManagerOptions{.wait_timeout_ms = 80,
                                    .deadlock_detection = false});
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kX).ok());
  Status st = lm.Lock(2, kObj, LockMode::kX);
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(lm.timeouts(), 1u);
}

// --- Display locks ---------------------------------------------------------

TEST(LockManagerTest, DisplayLockNeverBlocksAndNeverBlocksOthers) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kX).ok());       // txn 1 holds X
  EXPECT_TRUE(lm.Lock(100, kObj, LockMode::kD).ok());     // client 100: instant
  EXPECT_TRUE(lm.Lock(101, kObj, LockMode::kD).ok());
  // X still exclusive against other transactions...
  EXPECT_TRUE(lm.TryLock(2, kObj, LockMode::kX).IsBusy());
  // ...and a new X can be granted alongside D once released.
  ASSERT_TRUE(lm.Unlock(1, kObj).ok());
  EXPECT_TRUE(lm.TryLock(2, kObj, LockMode::kX).ok());
  auto holders = lm.DisplayLockHolders(kObj);
  EXPECT_EQ(holders.size(), 2u);
}

TEST(LockManagerTest, DisplayHoldersListedSeparately) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(100, kObj, LockMode::kD).ok());
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  EXPECT_EQ(lm.DisplayLockHolders(kObj), std::vector<LockOwnerId>{100});
  EXPECT_EQ(lm.Holders(kObj), std::vector<LockOwnerId>{1});
}

TEST(LockManagerTest, MixingDisplayAndRegularUnderOneOwnerRejected) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kD).ok());
  EXPECT_EQ(lm.Lock(1, kObj, LockMode::kX).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(lm.Lock(2, kObj, LockMode::kS).ok());
  EXPECT_EQ(lm.Lock(2, kObj, LockMode::kD).code(), StatusCode::kInvalidArgument);
}

TEST(LockManagerTest, DisplayUnlockLeavesOthers) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(100, kObj, LockMode::kD).ok());
  ASSERT_TRUE(lm.Lock(101, kObj, LockMode::kD).ok());
  ASSERT_TRUE(lm.Unlock(100, kObj).ok());
  EXPECT_EQ(lm.DisplayLockHolders(kObj), std::vector<LockOwnerId>{101});
}

// --- Deadlock detection -----------------------------------------------------

TEST(LockManagerTest, TwoTxnCycleDetected) {
  LockManager lm(LockManagerOptions{.wait_timeout_ms = 2000});
  ASSERT_TRUE(lm.Lock(1, Oid(1), LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(2, Oid(2), LockMode::kX).ok());
  std::thread t1([&] {
    // T1 blocks on Oid(2) held by T2.
    Status st = lm.Lock(1, Oid(2), LockMode::kX);
    if (st.ok()) {
      // Granted after T2 was refused and released.
      lm.ReleaseAll(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // T2 requesting Oid(1) completes the cycle: must be refused immediately.
  Status st = lm.Lock(2, Oid(1), LockMode::kX);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_GE(lm.deadlocks(), 1u);
  lm.ReleaseAll(2);
  t1.join();
}

TEST(LockManagerTest, UpgradeDeadlockDetected) {
  LockManager lm(LockManagerOptions{.wait_timeout_ms = 2000});
  ASSERT_TRUE(lm.Lock(1, kObj, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(2, kObj, LockMode::kS).ok());
  std::thread t1([&] {
    (void)lm.Lock(1, kObj, LockMode::kX);  // waits on T2's S
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status st = lm.Lock(2, kObj, LockMode::kX);  // cycle
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  lm.ReleaseAll(2);  // T1's upgrade can now proceed
  t1.join();
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ThreeTxnCycleDetected) {
  LockManager lm(LockManagerOptions{.wait_timeout_ms = 3000});
  ASSERT_TRUE(lm.Lock(1, Oid(1), LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(2, Oid(2), LockMode::kX).ok());
  ASSERT_TRUE(lm.Lock(3, Oid(3), LockMode::kX).ok());
  std::thread t1([&] { (void)lm.Lock(1, Oid(2), LockMode::kX); });
  std::thread t2([&] { (void)lm.Lock(2, Oid(3), LockMode::kX); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Status st = lm.Lock(3, Oid(1), LockMode::kX);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  lm.ReleaseAll(3);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  t1.join();
  t2.join();
}

// --- Concurrency stress ------------------------------------------------------

TEST(LockManagerStress, ExclusionIsMutual) {
  LockManager lm;
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> acquired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        Status st = lm.Lock(100 + t, kObj, LockMode::kX);
        if (!st.ok()) continue;
        acquired.fetch_add(1);
        int now = in_critical.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        in_critical.fetch_sub(1);
        ASSERT_TRUE(lm.Unlock(100 + t, kObj).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_seen.load(), 1);
  EXPECT_GT(acquired.load(), 700);  // nearly all succeed
}

}  // namespace
}  // namespace idba
