// Crash-point property test: for every prefix of a random committed
// workload, crashing immediately after commit k and recovering must yield
// exactly the model state after k commits — regardless of which data pages
// happened to be flushed before the crash.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "txn/recovery.h"
#include "txn/txn_manager.h"

namespace idba {
namespace {

DatabaseObject MakeObj(Oid oid, const std::string& payload) {
  DatabaseObject obj(oid, 1, 1);
  obj.Set(0, Value(payload));
  return obj;
}

struct ModelState {
  std::map<uint64_t, std::string> objects;  // oid -> payload
};

TEST(RecoveryPropertyTest, EveryCrashPointRecoversToModelPrefix) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Rng rng(seed);
    MemDisk data_disk, wal_disk;
    BufferPool pool(&data_disk, {.frame_count = 8});  // tiny: forces evictions
    auto heap = std::move(HeapStore::Open(&pool, 0).value());
    Wal wal(&wal_disk);
    TxnManager mgr(heap.get(), &wal);

    constexpr int kCommits = 40;
    ModelState model;
    // Snapshots of (disks, model, heap pages) after each commit.
    struct CrashPoint {
      std::unique_ptr<MemDisk> data;
      std::unique_ptr<MemDisk> wal;
      PageId data_pages;
      ModelState model;
    };
    std::vector<CrashPoint> points;

    for (int k = 0; k < kCommits; ++k) {
      TxnId t = mgr.Begin();
      int ops = 1 + static_cast<int>(rng.NextBelow(3));
      ModelState next = model;
      bool ok = true;
      for (int op = 0; op < ops && ok; ++op) {
        double dice = rng.NextDouble();
        if (dice < 0.5 || next.objects.empty()) {
          Oid oid = mgr.AllocateOid();
          std::string payload(1 + rng.NextBelow(200), 'a' + static_cast<char>(rng.NextBelow(26)));
          ASSERT_TRUE(mgr.Insert(t, MakeObj(oid, payload)).ok());
          next.objects[oid.value] = payload;
        } else if (dice < 0.8) {
          auto it = next.objects.begin();
          std::advance(it, rng.NextBelow(next.objects.size()));
          std::string payload(1 + rng.NextBelow(300), 'U');
          ASSERT_TRUE(mgr.Put(t, MakeObj(Oid(it->first), payload)).ok());
          it->second = payload;
        } else {
          auto it = next.objects.begin();
          std::advance(it, rng.NextBelow(next.objects.size()));
          ASSERT_TRUE(mgr.Erase(t, Oid(it->first)).ok());
          next.objects.erase(it);
        }
      }
      // Some transactions abort: model unchanged.
      if (rng.NextBool(0.2)) {
        ASSERT_TRUE(mgr.Abort(t).ok());
      } else {
        ASSERT_TRUE(mgr.Commit(t).ok());
        model = std::move(next);
      }
      // Randomly flush some dirty pages (vary what the crash preserves).
      if (rng.NextBool(0.3)) ASSERT_TRUE(pool.FlushAll().ok());
      points.push_back(CrashPoint{data_disk.Clone(), wal_disk.Clone(),
                                  heap->data_page_count(), model});
    }

    // Crash + recover at a sample of points (every 5th to keep it fast).
    for (size_t k = 0; k < points.size(); k += 5) {
      const CrashPoint& cp = points[k];
      BufferPool rpool(cp.data.get(), {.frame_count = 32});
      auto rheap = HeapStore::Open(&rpool, cp.data_pages);
      ASSERT_TRUE(rheap.ok());
      auto stats = RecoverFromWal(cp.wal.get(), rheap.value().get());
      ASSERT_TRUE(stats.ok()) << "seed " << seed << " crash point " << k;

      // Recovered state must equal the model exactly.
      EXPECT_EQ(rheap.value()->object_count(), cp.model.objects.size())
          << "seed " << seed << " crash point " << k;
      for (const auto& [oid, payload] : cp.model.objects) {
        auto obj = rheap.value()->Read(Oid(oid));
        ASSERT_TRUE(obj.ok()) << "seed " << seed << " point " << k << " oid " << oid;
        EXPECT_EQ(obj.value().Get(0), Value(payload));
      }
    }
  }
}

TEST(RecoveryPropertyTest, RecoveryIsIdempotent) {
  MemDisk data_disk, wal_disk;
  BufferPool pool(&data_disk, {.frame_count = 16});
  auto heap = std::move(HeapStore::Open(&pool, 0).value());
  Wal wal(&wal_disk);
  TxnManager mgr(heap.get(), &wal);
  for (int i = 0; i < 10; ++i) {
    TxnId t = mgr.Begin();
    ASSERT_TRUE(mgr.Insert(t, MakeObj(mgr.AllocateOid(), "x")).ok());
    ASSERT_TRUE(mgr.Commit(t).ok());
  }
  PageId pages = heap->data_page_count();
  pool.DropAllNoFlush();
  BufferPool rpool(&data_disk, {.frame_count = 16});
  auto rheap = std::move(HeapStore::Open(&rpool, pages).value());
  // Recover twice: second pass must be a no-op (versions already present).
  ASSERT_TRUE(RecoverFromWal(&wal_disk, rheap.get()).ok());
  auto second = RecoverFromWal(&wal_disk, rheap.get());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().redone_writes, 0u);
  EXPECT_EQ(rheap->object_count(), 10u);
}

}  // namespace
}  // namespace idba
