// Transport failure handling under injected faults: RPC deadlines against a
// stalled server, indeterminate (Unknown) commit outcomes when the
// connection dies mid-commit, heartbeat-based half-open detection,
// callback-ack timeouts, Reconnect() resume parity, and the bind-address /
// idle-timeout server options.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <csignal>
#include <thread>

#include "client/txn_retry.h"
#include "core/session.h"
#include "net/fault_injector.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"
#include "nms/network_model.h"
#include "obs/audit.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

/// Spins (real time) until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

class TransportFaultTest : public ::testing::Test {
 protected:
  void StartServer(TransportServerOptions transport_opts = {},
                   DeploymentOptions opts = {}) {
    deployment_ = std::make_unique<Deployment>(opts);
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter(), transport_opts);
    ASSERT_TRUE(transport_->Start().ok());
    ASSERT_NE(transport_->port(), 0);
  }

  void SeedNms() {
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
  }

  std::unique_ptr<RemoteDatabaseClient> Connect(
      ClientId id, RemoteClientOptions opts = {}) {
    auto client =
        RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), id,
                                      opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  /// Kills the transport (clients observe a dead connection) and brings a
  /// fresh one up on the same port over the same deployment — a server
  /// process restart from the client's point of view.
  void RestartTransport() {
    uint16_t port = transport_->port();
    transport_->Stop();
    TransportServerOptions opts;
    opts.port = port;
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter(), opts);
    ASSERT_TRUE(transport_->Start().ok());
  }

  /// A full server-process restart: the deployment (database, DLM lock
  /// table, notification bus) is rebuilt from scratch and re-seeded, then a
  /// fresh transport comes up on the same port. Unlike RestartTransport(),
  /// nothing server-side survives — in particular the DLM's OID -> holders
  /// table starts empty, exactly like a crashed-and-recovered process.
  void RestartDeployment(DeploymentOptions opts = {}) {
    uint16_t port = transport_->port();
    NmsConfig config = db_.config;
    transport_->Stop();
    transport_.reset();
    deployment_ = std::make_unique<Deployment>(opts);
    db_ = PopulateNms(&deployment_->server(), config).value();
    TransportServerOptions topts;
    topts.port = port;
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter(), topts);
    ASSERT_TRUE(transport_->Start().ok());
  }

  /// One read-modify-write commit of link `oid`'s Utilization.
  static Status UpdateUtilization(ClientApi* client, Oid oid, double value) {
    Result<TxnId> t = client->BeginTxn();
    IDBA_RETURN_NOT_OK(t.status());
    Result<DatabaseObject> obj = client->Read(t.value(), oid);
    if (!obj.ok()) {
      (void)client->Abort(t.value());
      return obj.status();
    }
    DatabaseObject link = std::move(obj).value();
    IDBA_RETURN_NOT_OK(
        link.SetByName(client->schema(), "Utilization", Value(value)));
    IDBA_RETURN_NOT_OK(client->Write(t.value(), std::move(link)));
    return client->Commit(t.value()).status();
  }

  void TearDown() override {
    transport_.reset();  // stops threads before the deployment dies
    deployment_.reset();
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<TransportServer> transport_;
  NmsDatabase db_;
};

TEST_F(TransportFaultTest, StalledServerRpcTimesOutWithinDeadline) {
  StartServer();
  RemoteClientOptions opts;
  opts.rpc_deadline_ms = 200;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);

  // Every response from here on vanishes: the server is healthy but, as
  // far as this client can tell, stalled.
  auto faults = std::make_shared<FaultInjector>();
  faults->InjectAll(FaultDirection::kRead, FaultKind::kDrop);
  client->set_fault_injector(faults);

  auto start = std::chrono::steady_clock::now();
  Status st = client->BeginTxn().status();
  int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_GE(elapsed, 150);   // the deadline was actually honored...
  EXPECT_LT(elapsed, 2000);  // ...and the call did not hang.

  // The connection itself survives a deadline miss: lift the fault and the
  // next RPC goes through (the late responses were disowned, not crossed).
  faults->Reset();
  Result<TxnId> txn = client->BeginTxn();
  EXPECT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_NE(txn.value(), 0u);
  EXPECT_TRUE(client->connected());
}

TEST_F(TransportFaultTest, DelayedResponseIsDroppedNotCrossed) {
  StartServer();
  RemoteClientOptions opts;
  opts.rpc_deadline_ms = 100;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);

  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kRead, FaultKind::kDelay, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/400});
  client->set_fault_injector(faults);

  // The response exists but arrives after the deadline: TimedOut, and the
  // late frame must not be matched to a *later* call.
  uint64_t bytes_before = client->bytes_received();
  EXPECT_TRUE(client->BeginTxn().status().IsTimedOut());
  // Wait until the reader has finished consuming the late response (it is
  // counted once fully read) so the next call's response is not stuck
  // behind the injected stall.
  ASSERT_TRUE(
      WaitFor([&] { return client->bytes_received() > bytes_before; }));
  Result<TxnId> txn = client->BeginTxn();
  EXPECT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_NE(txn.value(), 0u);
}

TEST_F(TransportFaultTest, WriteDelayInjectionSlowsTheCall) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);

  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kWrite, FaultKind::kDelay, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/150});
  client->set_fault_injector(faults);

  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client->BeginTxn().ok());
  EXPECT_GE(ElapsedMs(start), 140);
}

TEST_F(TransportFaultTest, ConnectToClosedPortFailsNotHangs) {
  StartServer();
  uint16_t port = transport_->port();
  transport_->Stop();
  auto start = std::chrono::steady_clock::now();
  auto client = RemoteDatabaseClient::Connect("127.0.0.1", port, 100);
  EXPECT_FALSE(client.ok());
  EXPECT_LT(ElapsedMs(start), 5000);
}

TEST_F(TransportFaultTest, MidCommitDisconnectIsUnknownAndRetrySafe) {
  StartServer();
  SeedNms();
  RemoteClientOptions opts;
  opts.rpc_deadline_ms = 10000;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);
  Oid oid = db_.link_oids[0];

  Result<TxnId> t = client->BeginTxn();
  ASSERT_TRUE(t.ok());
  DatabaseObject link = client->Read(t.value(), oid).value();
  uint64_t version_before = link.version();
  ASSERT_TRUE(
      link.SetByName(client->schema(), "Utilization", Value(0.66)).ok());
  ASSERT_TRUE(client->Write(t.value(), std::move(link)).ok());

  // Drop exactly the next inbound frame: the commit response. The server
  // *does* execute the commit — only the answer is lost.
  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kRead, FaultKind::kDrop, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/0});
  client->set_fault_injector(faults);

  Status commit_st;
  std::thread committer(
      [&] { commit_st = client->Commit(t.value()).status(); });
  // Once the response has been dropped the server has applied the commit;
  // now the connection dies with the commit still pending client-side.
  ASSERT_TRUE(WaitFor([&] { return faults->faults_fired() >= 1; }));
  transport_->Stop();
  committer.join();

  // Not Aborted, not IOError: the outcome is explicitly indeterminate.
  EXPECT_TRUE(commit_st.IsUnknown()) << commit_st.ToString();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));

  // "Retry" the way RunTransaction would: reconnect, re-read, re-derive.
  faults->Reset();
  RestartTransport();
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_EQ(client->reconnects(), 1u);

  // The first commit did apply — the re-read proves why a blind re-send
  // would be wrong and a read-modify-write retry is right.
  DatabaseObject current = client->ReadCurrent(oid).value();
  EXPECT_EQ(current.version(), version_before + 1);
  EXPECT_EQ(current.GetByName(client->schema(), "Utilization").value(),
            Value(0.66));

  ASSERT_TRUE(UpdateUtilization(client.get(), oid, 0.25).ok());
  DatabaseObject after = client->ReadCurrent(oid).value();
  EXPECT_EQ(after.version(), version_before + 2);
}

TEST_F(TransportFaultTest, RunTransactionRecoversViaReconnectHook) {
  StartServer();
  SeedNms();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  Oid oid = db_.link_oids[0];

  // Kill the server out from under the client, then bring it back: the
  // first attempt inside RunTransaction fails with a transport error, the
  // recover hook re-dials, the second attempt commits.
  RestartTransport();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));

  TxnRetryOptions retry;
  retry.recover = [&] { return client->Reconnect(); };
  TxnRetryResult result = RunTransaction(
      client.get(),
      [&](ClientApi& c, TxnId txn) {
        Result<DatabaseObject> obj = c.Read(txn, oid);
        IDBA_RETURN_NOT_OK(obj.status());
        DatabaseObject link = std::move(obj).value();
        IDBA_RETURN_NOT_OK(
            link.SetByName(c.schema(), "Utilization", Value(0.31)));
        return c.Write(txn, std::move(link));
      },
      retry);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.attempts, 2);
  EXPECT_TRUE(client->connected());
  EXPECT_EQ(client->ReadCurrent(oid)
                .value()
                .GetByName(client->schema(), "Utilization")
                .value(),
            Value(0.31));
}

TEST_F(TransportFaultTest, WithoutRecoverHookTransportErrorIsTerminal) {
  StartServer();
  SeedNms();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  transport_->Stop();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));

  TxnRetryOptions retry;  // no recover hook
  TxnRetryResult result = RunTransaction(
      client.get(),
      [&](ClientApi&, TxnId) { return Status::OK(); }, retry);
  EXPECT_EQ(result.status.code(), StatusCode::kIOError)
      << result.status.ToString();
  EXPECT_EQ(result.attempts, 1);
}

TEST_F(TransportFaultTest, CallbackAckTimeoutUnblocksCommit) {
  TransportServerOptions server_opts;
  server_opts.callback_ack_timeout_ms = 100;
  StartServer(server_opts);
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  Oid oid = db_.link_oids[0];

  // Viewer registers a cached copy, then goes mute: every frame it writes
  // (including the CALLBACK_ACK the writer's commit waits on) is dropped.
  ASSERT_TRUE(viewer->ReadCurrent(oid).ok());
  auto faults = std::make_shared<FaultInjector>();
  faults->InjectAll(FaultDirection::kWrite, FaultKind::kDrop);
  viewer->set_fault_injector(faults);

  auto start = std::chrono::steady_clock::now();
  Status st = UpdateUtilization(writer.get(), oid, 0.5);
  int64_t elapsed = ElapsedMs(start);
  EXPECT_TRUE(st.ok()) << st.ToString();  // dead viewer cannot wedge commits
  EXPECT_LT(elapsed, 4000);
}

TEST_F(TransportFaultTest, HeartbeatDetectsHalfOpenConnection) {
  StartServer();
  RemoteClientOptions opts;
  opts.heartbeat_interval_ms = 50;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->connected());

  // Server responses stop arriving (the TCP connection stays up): only the
  // heartbeat can notice.
  auto faults = std::make_shared<FaultInjector>();
  faults->InjectAll(FaultDirection::kRead, FaultKind::kDrop);
  client->set_fault_injector(faults);

  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));
  EXPECT_GE(client->heartbeats_sent(), 1u);
}

TEST_F(TransportFaultTest, ReconnectResumesWorkloadWithParity) {
  StartServer();
  SeedNms();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);

  // First half of the workload, then the server transport dies and comes
  // back (same database), then the second half after Reconnect().
  for (size_t i = 0; i < db_.link_oids.size(); ++i) {
    ASSERT_TRUE(
        UpdateUtilization(client.get(), db_.link_oids[i], 0.1 * (i + 1)).ok());
  }
  RestartTransport();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_EQ(client->cache().entry_count(), 0u);  // dead session's copies gone
  for (size_t i = 0; i < db_.link_oids.size(); ++i) {
    ASSERT_TRUE(
        UpdateUtilization(client.get(), db_.link_oids[i], 0.2 * (i + 1)).ok());
  }

  // Control: the same call sequence against a never-interrupted in-process
  // deployment must land on identical versions and values.
  Deployment control;
  NmsDatabase control_db = PopulateNms(&control.server(), db_.config).value();
  auto session = control.NewSession(100);
  for (size_t i = 0; i < control_db.link_oids.size(); ++i) {
    ASSERT_TRUE(UpdateUtilization(&session->client(),
                                  control_db.link_oids[i], 0.1 * (i + 1))
                    .ok());
    ASSERT_TRUE(UpdateUtilization(&session->client(),
                                  control_db.link_oids[i], 0.2 * (i + 1))
                    .ok());
  }
  for (size_t i = 0; i < db_.link_oids.size(); ++i) {
    DatabaseObject ours = client->ReadCurrent(db_.link_oids[i]).value();
    DatabaseObject theirs =
        session->client().ReadCurrent(control_db.link_oids[i]).value();
    EXPECT_EQ(ours.version(), theirs.version());
    EXPECT_EQ(ours.GetByName(client->schema(), "Utilization").value(),
              theirs.GetByName(session->client().schema(), "Utilization")
                  .value());
  }
}

TEST_F(TransportFaultTest, ReconnectReplaysDisplayLocksToRestartedServer) {
  StartServer();
  SeedNms();
  auto viewer = Connect(100);
  ASSERT_NE(viewer, nullptr);

  // A viewer pins two links into its display, then the whole server process
  // dies and comes back with an empty DLM table.
  Oid watched = db_.link_oids[0];
  ASSERT_TRUE(viewer->Lock(100, watched, viewer->clock().Now()).ok());
  ASSERT_TRUE(
      viewer->LockBatch(100, {db_.link_oids[1]}, viewer->clock().Now()).ok());
  EXPECT_EQ(viewer->held_display_locks(), 2u);

  RestartDeployment();
  ASSERT_TRUE(WaitFor([&] { return !viewer->connected(); }));
  ASSERT_TRUE(viewer->Reconnect().ok());
  // The replay re-registered both locks with the restarted DLM...
  EXPECT_EQ(viewer->held_display_locks(), 2u);
  EXPECT_EQ(deployment_->dlm().holder_count(watched), 1u);
  EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[1]), 1u);
  EXPECT_EQ(deployment_->dlm().reregister_requests(), 1u);  // one bulk RPC
  // ...and a synthetic RESYNC told the view layer to refetch everything
  // that changed while we were gone.
  EXPECT_GE(viewer->inbox().DrainAll().size(), 1u);

  // The proof of life: a commit by another client on a watched object must
  // reach the reconnected viewer as a NOTIFY again.
  auto writer = Connect(101);
  ASSERT_NE(writer, nullptr);
  ASSERT_TRUE(UpdateUtilization(writer.get(), watched, 0.5).ok());
  EXPECT_TRUE(WaitFor([&] { return viewer->notifications_received() >= 1; }));

  // Unlocked objects are not replayed by a later reconnect.
  ASSERT_TRUE(
      viewer->Unlock(100, db_.link_oids[1], viewer->clock().Now()).ok());
  EXPECT_EQ(viewer->held_display_locks(), 1u);
}

// Regression (consistency auditor x session recovery): a reconnect to a
// RESTARTED deployment synthesizes a RESYNC, but unlike an overload resync
// the server's virtual clocks started over — post-restart commit vtimes are
// legitimately LOWER than pre-restart ones. Reconnect() must reset the
// auditor's per-subscriber watermarks (OnSessionReset), not replay them:
// with the strict auditor armed, a kept watermark would abort this test on
// the first post-restart notification.
TEST_F(TransportFaultTest, RestartThenCommitDoesNotTripStrictAuditor) {
  obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
  auditor.ResetForTest();
  auditor.SetMode(obs::AuditMode::kStrict);

  StartServer();
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  Oid watched = db_.link_oids[0];
  ASSERT_TRUE(viewer->Lock(100, watched, viewer->clock().Now()).ok());

  // Pre-restart stream: several commits drive the watched OID's observed
  // commit vtime well above zero on both the sender and receiver side.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(UpdateUtilization(writer.get(), watched, i / 10.0).ok());
  }
  ASSERT_TRUE(WaitFor([&] { return viewer->notifications_received() >= 5; }));

  // Full server-process restart: fresh deployment, fresh virtual clocks,
  // same port. Both sessions reconnect; the viewer's lock replay must be
  // preceded by an auditor session reset.
  RestartDeployment();
  ASSERT_TRUE(WaitFor([&] { return !viewer->connected(); }));
  ASSERT_TRUE(WaitFor([&] { return !writer->connected(); }));
  ASSERT_TRUE(viewer->Reconnect().ok());
  ASSERT_TRUE(writer->Reconnect().ok());

  // Post-restart commit: its vtime is far below the pre-restart watermark.
  // With the reset this is clean; without it, strict audit aborts here.
  uint64_t notified_before = viewer->notifications_received();
  ASSERT_TRUE(UpdateUtilization(writer.get(), watched, 0.9).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return viewer->notifications_received() > notified_before; }));

  EXPECT_GT(auditor.checks_total(), 0u);
  EXPECT_EQ(auditor.violations_total(), 0u);
  auditor.ResetForTest();
}

TEST_F(TransportFaultTest, ReconnectWhileConnectedIsRefused) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->Reconnect().code(), StatusCode::kInvalidArgument);
}

TEST_F(TransportFaultTest, BeginAndAllocateOidPropagateTransportErrors) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  transport_->Stop();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));

  // The Result-returning API surfaces the transport failure...
  EXPECT_EQ(client->BeginTxn().status().code(), StatusCode::kIOError);
  EXPECT_EQ(client->NewOid().status().code(), StatusCode::kIOError);
  // ...and the legacy value-returning wrappers degrade to sentinels
  // instead of silently fabricating usable-looking ids.
  EXPECT_EQ(client->Begin(), 0u);
  EXPECT_TRUE(client->AllocateOid().IsNull());
}

TEST_F(TransportFaultTest, BindAddressIsConfigurable) {
  TransportServerOptions opts;
  opts.bind_host = "0.0.0.0";
  StartServer(opts);
  auto client = Connect(100);  // reachable via loopback
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->BeginTxn().ok());

  TransportServer bad(&deployment_->server(), &deployment_->dlm(),
                      &deployment_->bus(), &deployment_->meter(),
                      TransportServerOptions{/*port=*/0,
                                             /*bind_host=*/"not-an-address"});
  EXPECT_FALSE(bad.Start().ok());
}

TEST_F(TransportFaultTest, ServerIdleTimeoutDropsSilentConnection) {
  TransportServerOptions opts;
  opts.idle_timeout_ms = 100;
  StartServer(opts);

  // A raw connection that never sends a frame (not even Hello) gets cut.
  Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
  ASSERT_TRUE(raw.ok());
  Socket sock = std::move(raw).value();
  wire::FrameHeader header;
  std::vector<uint8_t> payload;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(sock.ReadFrame(&header, &payload).ok());  // EOF from server
  EXPECT_LT(ElapsedMs(start), 5000);
}

TEST_F(TransportFaultTest, TruncatedWriteLeavesPeerStalledUntilDeadline) {
  StartServer();
  RemoteClientOptions opts;
  opts.rpc_deadline_ms = 200;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);

  // Half the request reaches the wire; the server reader sits on a partial
  // frame, so no response ever comes — the deadline is the only way out.
  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kWrite, FaultKind::kTruncate, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/0});
  client->set_fault_injector(faults);
  EXPECT_TRUE(client->BeginTxn().status().IsTimedOut());
}

TEST_F(TransportFaultTest, WriteErrorInjectionFailsTheCallImmediately) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kWrite, FaultKind::kError, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/0});
  client->set_fault_injector(faults);
  // Nothing was sent, so this is a definite IOError, not Unknown.
  EXPECT_EQ(client->BeginTxn().status().code(), StatusCode::kIOError);
  // The next call (fault exhausted) is healthy.
  EXPECT_TRUE(client->BeginTxn().ok());
}

// --- NOTIFY fan-out soak ---------------------------------------------------
//
// A big population of raw wire-v2 subscriber sockets (one D lock each on a
// hot object) all receive every committed update, and the transport
// serializes each update's NOTIFY body exactly once: the fanout counters
// show one encode per distinct message and a reuse for every other
// subscriber. Under sanitizers the population shrinks (same code paths,
// smaller constants).
TEST_F(TransportFaultTest, ThousandSubscriberFanoutSerializesOnce) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr int kSubscribers = 128;
#else
  constexpr int kSubscribers = 1000;
#endif
  constexpr int kCommits = 3;
  StartServer();
  SeedNms();
  Oid hot = db_.link_oids[0];

  // Raw v2 subscribers: Hello (with the trailing version byte), then one
  // display lock on the hot object. No reader thread per socket — frames
  // accumulate in each socket's kernel buffer until the test drains them.
  std::vector<Socket> subs;
  subs.reserve(kSubscribers);
  std::mutex write_mu;
  for (int i = 0; i < kSubscribers; ++i) {
    Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    Socket sock = std::move(raw).value();
    const uint64_t id = 10000 + i;
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
      enc.PutI64(0);  // client_now
      enc.PutU64(id);
      enc.PutU8(0);  // kAvoidance
      enc.PutU8(wire::kWireVersion);
      ASSERT_TRUE(
          sock.WriteFrame(write_mu, wire::FrameType::kRequest, 1, payload)
              .ok());
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
    }
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kDlmLock));
      enc.PutI64(0);           // client_now
      enc.PutI64(0);           // sent_at
      enc.PutU64(id);          // holder
      enc.PutU64(hot.value);   // oid
      ASSERT_TRUE(
          sock.WriteFrame(write_mu, wire::FrameType::kRequest, 2, payload)
              .ok());
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
    }
    subs.push_back(std::move(sock));
  }

  const uint64_t encodes_before = transport_->fanout_encodes();
  const uint64_t reuses_before = transport_->fanout_reuses();

  auto writer = Connect(999);
  ASSERT_NE(writer, nullptr);
  for (int c = 0; c < kCommits; ++c) {
    ASSERT_TRUE(UpdateUtilization(writer.get(), hot, 0.10 + 0.01 * c).ok());
  }

  // Every subscriber sees every commit, in order.
  for (Socket& sock : subs) {
    ASSERT_TRUE(sock.SetRecvTimeout(10000).ok());
    for (int c = 0; c < kCommits; ++c) {
      wire::FrameHeader header;
      std::vector<uint8_t> frame;
      ASSERT_TRUE(sock.ReadFrame(&header, &frame).ok());
      EXPECT_EQ(header.type, wire::FrameType::kNotify);
    }
  }

  // Single-serialization invariant: each commit's notification body was
  // encoded once and reused for the other kSubscribers-1 connections.
  const uint64_t encodes = transport_->fanout_encodes() - encodes_before;
  const uint64_t reuses = transport_->fanout_reuses() - reuses_before;
  EXPECT_EQ(encodes, static_cast<uint64_t>(kCommits));
  EXPECT_EQ(reuses, static_cast<uint64_t>(kCommits) * (kSubscribers - 1));
}

// SIGPIPE regression: subscribers vanish (RST, not FIN) while the server
// still owes them a large NOTIFY backlog. A bare writev on such a socket
// raises SIGPIPE, whose default disposition kills the process — the
// transport must ignore it (TransportServer::Start installs SIG_IGN; this
// test restores SIG_DFL first so the ignore demonstrably comes from the
// server, not from the test harness or gtest).
TEST_F(TransportFaultTest, ClientDisconnectDuringNotifyBacklogSurvivesSigpipe) {
  std::signal(SIGPIPE, SIG_DFL);
  StartServer();
  SeedNms();
  Oid hot = db_.link_oids[0];

  // Raw v2 subscribers take a display lock on the hot object and then
  // never read: every commit below queues a NOTIFY for each of them.
  constexpr int kSubscribers = 4;
  std::vector<Socket> subs;
  std::mutex write_mu;
  for (int i = 0; i < kSubscribers; ++i) {
    Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    Socket sock = std::move(raw).value();
    const uint64_t id = 20000 + i;
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
      enc.PutI64(0);  // client_now
      enc.PutU64(id);
      enc.PutU8(0);  // kAvoidance
      enc.PutU8(wire::kWireVersion);
      ASSERT_TRUE(
          sock.WriteFrame(write_mu, wire::FrameType::kRequest, 1, payload)
              .ok());
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
    }
    {
      std::vector<uint8_t> payload;
      Encoder enc(&payload);
      enc.PutU8(static_cast<uint8_t>(wire::Method::kDlmLock));
      enc.PutI64(0);          // client_now
      enc.PutI64(0);          // sent_at
      enc.PutU64(id);         // holder
      enc.PutU64(hot.value);  // oid
      ASSERT_TRUE(
          sock.WriteFrame(write_mu, wire::FrameType::kRequest, 2, payload)
              .ok());
      wire::FrameHeader header;
      std::vector<uint8_t> reply;
      ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
    }
    subs.push_back(std::move(sock));
  }

  auto writer = Connect(300);
  ASSERT_NE(writer, nullptr);
  // Build the backlog while the subscribers are alive but not reading.
  for (int c = 0; c < 10; ++c) {
    ASSERT_TRUE(UpdateUtilization(writer.get(), hot, 0.10 + 0.01 * c).ok());
  }

  // Abrupt death: SO_LINGER(0) turns close() into an immediate RST, and
  // the unread NOTIFY frames in each receive queue guarantee the reset is
  // sent. The server learns of it only when its next flush writes.
  for (Socket& sock : subs) {
    struct linger lg {1, 0};
    (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  subs.clear();  // closes the fds

  // Keep committing: each commit makes the server flush NOTIFYs into the
  // reset sockets until it notices and reaps them. With SIGPIPE at
  // SIG_DFL and no SIG_IGN in the transport, this loop kills the process.
  for (int c = 0; c < 10; ++c) {
    ASSERT_TRUE(UpdateUtilization(writer.get(), hot, 0.20 + 0.01 * c).ok());
  }

  // The server is still healthy: fresh connections work end-to-end.
  auto bystander = Connect(301);
  ASSERT_NE(bystander, nullptr);
  Result<DatabaseObject> fresh = bystander->ReadCurrent(hot);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
}

}  // namespace
}  // namespace idba
