#include "viz/pdq_tree.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

PdqNode Node(const std::string& label, double util,
             std::vector<PdqNode> children = {}) {
  PdqNode n;
  n.label = label;
  n.attributes["Utilization"] = util;
  n.children = std::move(children);
  return n;
}

PdqNode SampleTree() {
  // root(0.5) -> {siteA(0.2) -> {dev1(0.9), dev2(0.1)}, siteB(0.8) -> {dev3(0.5)}}
  return Node("root", 0.5,
              {Node("siteA", 0.2, {Node("dev1", 0.9), Node("dev2", 0.1)}),
               Node("siteB", 0.8, {Node("dev3", 0.5)})});
}

TEST(PdqTreeTest, NoQueriesShowsEverything) {
  auto layout = LayoutPdqTree(SampleTree(), {});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().visible_count, 6u);
  EXPECT_EQ(layout.value().pruned_count, 0u);
  EXPECT_EQ(layout.value().nodes.size(), 6u);
}

TEST(PdqTreeTest, LevelsMapToXCoordinates) {
  PdqOptions opts;
  opts.level_spacing = 10;
  auto layout = LayoutPdqTree(SampleTree(), {}, opts).value();
  for (const auto& n : layout.nodes) {
    EXPECT_DOUBLE_EQ(n.position.x, n.level * 10.0);
  }
  EXPECT_EQ(layout.nodes[0].level, 0);
  EXPECT_EQ(layout.nodes[0].parent_index, -1);
}

TEST(PdqTreeTest, QueryPrunesSubtrees) {
  // Keep only devices (level 2) with utilization >= 0.5.
  DynamicQuery q{2, "Utilization", 0.5, 1.0};
  auto layout = LayoutPdqTree(SampleTree(), {q}).value();
  // dev2 (0.1) pruned; everything else stays.
  EXPECT_EQ(layout.visible_count, 5u);
  EXPECT_EQ(layout.pruned_count, 1u);
  for (const auto& n : layout.nodes) EXPECT_NE(n.label, "dev2");
}

TEST(PdqTreeTest, PruningAnInteriorNodePrunesItsSubtree) {
  // Level-1 filter rejecting siteB (0.8 > 0.5) removes dev3 too.
  DynamicQuery q{1, "Utilization", 0.0, 0.5};
  auto layout = LayoutPdqTree(SampleTree(), {q}).value();
  EXPECT_EQ(layout.pruned_count, 2u);  // siteB + dev3
  for (const auto& n : layout.nodes) {
    EXPECT_NE(n.label, "siteB");
    EXPECT_NE(n.label, "dev3");
  }
}

TEST(PdqTreeTest, AllLevelsQueryAppliesEverywhere) {
  DynamicQuery q{DynamicQuery::kAllLevels, "Utilization", 0.0, 0.6};
  auto layout = LayoutPdqTree(SampleTree(), {q}).value();
  // dev1 (0.9) and siteB (0.8, + its subtree dev3) pruned.
  EXPECT_EQ(layout.visible_count, 3u);
  EXPECT_EQ(layout.pruned_count, 3u);
}

TEST(PdqTreeTest, UnknownAttributeMatchesEverything) {
  DynamicQuery q{DynamicQuery::kAllLevels, "NoSuchAttr", 0.0, 0.0};
  auto layout = LayoutPdqTree(SampleTree(), {q}).value();
  EXPECT_EQ(layout.visible_count, 6u);
}

TEST(PdqTreeTest, RootPrunedYieldsEmptyLayout) {
  DynamicQuery q{0, "Utilization", 0.9, 1.0};  // root has 0.5
  auto layout = LayoutPdqTree(SampleTree(), {q}).value();
  EXPECT_EQ(layout.visible_count, 0u);
  EXPECT_TRUE(layout.nodes.empty());
}

TEST(PdqTreeTest, InvalidRangeRejected) {
  DynamicQuery q{0, "Utilization", 0.9, 0.1};
  EXPECT_EQ(LayoutPdqTree(SampleTree(), {q}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PdqTreeTest, ParentsCenteredOverChildren) {
  auto layout = LayoutPdqTree(SampleTree(), {}).value();
  // Locate root and its children.
  double root_y = 0, site_a_y = 0, site_b_y = 0;
  for (const auto& n : layout.nodes) {
    if (n.label == "root") root_y = n.position.y;
    if (n.label == "siteA") site_a_y = n.position.y;
    if (n.label == "siteB") site_b_y = n.position.y;
  }
  EXPECT_NEAR(root_y, (site_a_y + site_b_y) / 2, 1e-9);
}

TEST(PdqTreeTest, LeavesGetDistinctRows) {
  PdqOptions opts;
  opts.row_spacing = 3.0;
  auto layout = LayoutPdqTree(SampleTree(), {}, opts).value();
  std::vector<double> leaf_ys;
  for (const auto& n : layout.nodes) {
    if (n.label.rfind("dev", 0) == 0) leaf_ys.push_back(n.position.y);
  }
  ASSERT_EQ(leaf_ys.size(), 3u);
  std::sort(leaf_ys.begin(), leaf_ys.end());
  EXPECT_DOUBLE_EQ(leaf_ys[1] - leaf_ys[0], 3.0);
  EXPECT_DOUBLE_EQ(leaf_ys[2] - leaf_ys[1], 3.0);
  EXPECT_DOUBLE_EQ(layout.height, 9.0);
}

TEST(PdqTreeTest, TotalCountCountsSubtree) {
  EXPECT_EQ(SampleTree().TotalCount(), 6u);
  EXPECT_EQ(Node("leaf", 0).TotalCount(), 1u);
}

TEST(PdqTreeTest, MultipleQueriesIntersect) {
  // Devices must have util in [0.4, 1.0] AND [0.0, 0.6] -> only dev3 (0.5).
  DynamicQuery q1{2, "Utilization", 0.4, 1.0};
  DynamicQuery q2{2, "Utilization", 0.0, 0.6};
  auto layout = LayoutPdqTree(SampleTree(), {q1, q2}).value();
  int devices = 0;
  for (const auto& n : layout.nodes) {
    if (n.label.rfind("dev", 0) == 0) {
      ++devices;
      EXPECT_EQ(n.label, "dev3");
    }
  }
  EXPECT_EQ(devices, 1);
}

}  // namespace
}  // namespace idba
