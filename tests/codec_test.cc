#include "common/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace idba {
namespace {

TEST(CodecTest, FixedWidthRoundTrip) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFULL);
  enc.PutI64(-42);
  enc.PutDouble(3.14159);

  Decoder dec(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, StringRoundTrip) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutString("");
  enc.PutString("hello");
  enc.PutString(std::string(1000, 'x'));

  Decoder dec(buf);
  std::string a, b, c;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  ASSERT_TRUE(dec.GetString(&c).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodecTest, DecodeUnderflowIsCorruption) {
  std::vector<uint8_t> buf = {0x01};
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetU64(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, StringUnderflowIsCorruption) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(100);  // claims 100 bytes follow
  buf.push_back('x');  // only 1 does
  Decoder dec(buf);
  std::string s;
  EXPECT_EQ(dec.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(CodecTest, VarintOverlongIsCorruption) {
  std::vector<uint8_t> buf(11, 0xFF);  // continuation bit forever
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(CodecTest, SkipAndRemaining) {
  std::vector<uint8_t> buf(10, 0);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), 10u);
  ASSERT_TRUE(dec.Skip(4).ok());
  EXPECT_EQ(dec.remaining(), 6u);
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.Skip(7).code(), StatusCode::kCorruption);
}

class VarintSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintSweep, RoundTrips) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(GetParam());
  Decoder dec(buf);
  uint64_t v = 0;
  ASSERT_TRUE(dec.GetVarint(&v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintSweep,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 255ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 17,
                      ~0ULL));

TEST(CodecProperty, RandomSequencesRoundTrip) {
  Rng rng(123);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    std::vector<uint8_t> buf;
    Encoder enc(&buf);
    int n = 1 + static_cast<int>(rng.NextBelow(30));
    for (int i = 0; i < n; ++i) {
      uint64_t v = rng.NextU64() >> rng.NextBelow(64);
      varints.push_back(v);
      enc.PutVarint(v);
      std::string s(rng.NextBelow(64), static_cast<char>('a' + rng.NextBelow(26)));
      strings.push_back(s);
      enc.PutString(s);
    }
    Decoder dec(buf);
    for (int i = 0; i < n; ++i) {
      uint64_t v = 0;
      std::string s;
      ASSERT_TRUE(dec.GetVarint(&v).ok());
      ASSERT_TRUE(dec.GetString(&s).ok());
      EXPECT_EQ(v, varints[i]);
      EXPECT_EQ(s, strings[i]);
    }
    EXPECT_TRUE(dec.exhausted());
  }
}

// --- Hardening against truncated / malformed input ----------------------
// The wire transport feeds network bytes straight into the Decoder, so a
// corrupt or hostile peer must produce clean Status errors, never
// out-of-bounds reads or integer-overflow bypasses.

TEST(CodecHardening, OverlongVarintRejected) {
  // 11 continuation bytes: more than a 64-bit varint can ever need.
  std::vector<uint8_t> buf(11, 0x80);
  buf.push_back(0x00);
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(CodecHardening, VarintOverflowBitsRejected) {
  // 10 bytes whose final byte sets bits beyond the 64th: the encoding is
  // length-valid but the value overflows uint64.
  std::vector<uint8_t> buf(9, 0xFF);
  buf.push_back(0x02);  // 10th byte may only contribute bit 63 (0x01)
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(CodecHardening, MaxVarintStillAccepted) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(~0ULL);
  Decoder dec(buf);
  uint64_t v = 0;
  ASSERT_TRUE(dec.GetVarint(&v).ok());
  EXPECT_EQ(v, ~0ULL);
}

TEST(CodecHardening, TruncatedVarintRejected) {
  std::vector<uint8_t> buf = {0x80, 0x80};  // continuation bits, no end
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetVarint(&v).ok());
}

TEST(CodecHardening, StringLengthBeyondRemainingRejected) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(1000);  // claims 1000 bytes of body...
  enc.PutBytes("abc", 3);  // ...but only 3 follow
  Decoder dec(buf);
  std::string s;
  EXPECT_FALSE(dec.GetString(&s).ok());
}

TEST(CodecHardening, HugeStringLengthDoesNotOverflowBoundsCheck) {
  // A length prefix near UINT64_MAX must not wrap the pos+len comparison
  // into accepting the read.
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutVarint(~0ULL - 7);
  Decoder dec(buf);
  std::string s;
  EXPECT_FALSE(dec.GetString(&s).ok());
}

TEST(CodecHardening, TruncatedFixedRejected) {
  std::vector<uint8_t> buf = {0x01, 0x02, 0x03};  // 3 of 8 bytes
  Decoder dec(buf);
  uint64_t v = 0;
  EXPECT_FALSE(dec.GetU64(&v).ok());
  // The failed read must not consume anything usable: a smaller read of
  // what actually remains still works.
  uint8_t b = 0;
  EXPECT_TRUE(dec.GetU8(&b).ok());
  EXPECT_EQ(b, 0x01);
}

TEST(CodecHardening, SkipPastEndRejected) {
  std::vector<uint8_t> buf = {1, 2, 3, 4};
  Decoder dec(buf);
  EXPECT_TRUE(dec.Skip(3).ok());
  EXPECT_FALSE(dec.Skip(2).ok());
  EXPECT_FALSE(dec.Skip(~size_t{0}).ok());  // overflow-sized skip
}

TEST(CodecHardening, EmptyBufferReads) {
  Decoder dec(nullptr, 0);
  uint8_t b;
  uint64_t v;
  std::string s;
  EXPECT_FALSE(dec.GetU8(&b).ok());
  EXPECT_FALSE(dec.GetVarint(&v).ok());
  EXPECT_FALSE(dec.GetString(&s).ok());
  EXPECT_TRUE(dec.exhausted());
}

}  // namespace
}  // namespace idba

