#include "objectmodel/value.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t(7)).AsInt(), 7);
  EXPECT_EQ(Value(7).type(), ValueType::kInt);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(Oid(9)).AsOid(), Oid(9));
  std::vector<Oid> list = {Oid(1), Oid(2)};
  EXPECT_EQ(Value(list).AsOidList().size(), 2u);
}

TEST(ValueTest, AsNumberWidens) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Value(true).AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(Value("x").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Value().AsNumber(), 0.0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_NE(Value(3), Value(3.0));  // different types
  EXPECT_EQ(Value("a"), Value(std::string("a")));
}

class ValueRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTrip, EncodeDecode) {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  GetParam().EncodeTo(&enc);
  Decoder dec(buf);
  Value out;
  ASSERT_TRUE(Value::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueRoundTrip,
    ::testing::Values(Value(), Value(int64_t(-5)), Value(int64_t(1) << 40),
                      Value(0.0), Value(-123.456), Value(true), Value(false),
                      Value(""), Value("utilization"),
                      Value(std::string(300, 'z')), Value(Oid(0)),
                      Value(Oid(~0ULL)), Value(std::vector<Oid>{}),
                      Value(std::vector<Oid>{Oid(1), Oid(99), Oid(12345)})));

TEST(ValueTest, WireBytesMatchesEncodedSizeClosely) {
  for (const Value& v :
       {Value(), Value(42), Value(2.5), Value("some string"), Value(Oid(7)),
        Value(std::vector<Oid>{Oid(1), Oid(2), Oid(3)})}) {
    std::vector<uint8_t> buf;
    Encoder enc(&buf);
    v.EncodeTo(&enc);
    // WireBytes is an upper-bound estimate (varint headroom).
    EXPECT_GE(v.WireBytes(), buf.size());
    EXPECT_LE(v.WireBytes(), buf.size() + 8);
  }
}

TEST(ValueTest, MemoryBytesGrowsWithContent) {
  EXPECT_GT(Value(std::string(1000, 'a')).MemoryBytes(),
            Value("short").MemoryBytes());
  EXPECT_GT(Value(std::vector<Oid>(100)).MemoryBytes(),
            Value(std::vector<Oid>(1)).MemoryBytes());
}

TEST(ValueTest, DecodeRejectsUnknownTag) {
  std::vector<uint8_t> buf = {0x77};
  Decoder dec(buf);
  Value out;
  EXPECT_EQ(Value::DecodeFrom(&dec, &out).code(), StatusCode::kCorruption);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(std::vector<Oid>{Oid(1), Oid(2)}).ToString(), "[1,2]");
}

TEST(ValueTest, TypeNames) {
  EXPECT_EQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_EQ(ValueTypeName(ValueType::kOidList), "oid_list");
}

}  // namespace
}  // namespace idba
