#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace idba {
namespace {

TEST(BufferPoolTest, FetchMissesThenHits) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 4});
  bool missed = false;
  {
    auto g = pool.FetchPage(0, &missed);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(missed);
  }
  {
    auto g = pool.FetchPage(0, &missed);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(missed);
  }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, DirtyPagesReachDiskOnEviction) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 2});
  {
    auto g = pool.FetchPage(0);
    ASSERT_TRUE(g.ok());
    g.value().data()->bytes[10] = 0x42;
    g.value().MarkDirty();
  }
  // Evict page 0 by touching two other pages.
  { auto g = pool.FetchPage(1); ASSERT_TRUE(g.ok()); }
  { auto g = pool.FetchPage(2); ASSERT_TRUE(g.ok()); }
  EXPECT_GE(pool.evictions(), 1u);
  PageData out;
  ASSERT_TRUE(disk.ReadPage(0, &out).ok());
  EXPECT_EQ(out.bytes[10], 0x42);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 2});
  auto a = pool.FetchPage(0);
  auto b = pool.FetchPage(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // All frames pinned: a third fetch must fail, not evict.
  auto c = pool.FetchPage(2);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsBusy());
  a.value().Release();
  auto d = pool.FetchPage(2);
  EXPECT_TRUE(d.ok());
}

TEST(BufferPoolTest, LruEvictsOldestUnpinned) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 2});
  { auto g = pool.FetchPage(0); ASSERT_TRUE(g.ok()); }
  { auto g = pool.FetchPage(1); ASSERT_TRUE(g.ok()); }
  // Touch 0 so 1 becomes LRU.
  { auto g = pool.FetchPage(0); ASSERT_TRUE(g.ok()); }
  { auto g = pool.FetchPage(2); ASSERT_TRUE(g.ok()); }  // evicts 1
  bool missed = false;
  { auto g = pool.FetchPage(0, &missed); ASSERT_TRUE(g.ok()); }
  EXPECT_FALSE(missed);  // 0 survived
  { auto g = pool.FetchPage(1, &missed); ASSERT_TRUE(g.ok()); }
  EXPECT_TRUE(missed);   // 1 was evicted
}

TEST(BufferPoolTest, FlushAllWritesDirtyFrames) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 4});
  {
    auto g = pool.NewPage(5);
    ASSERT_TRUE(g.ok());
    g.value().data()->bytes[kPageCrcSize] = 0x77;
    g.value().MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  PageData out;
  ASSERT_TRUE(disk.ReadPage(5, &out).ok());
  EXPECT_EQ(out.bytes[kPageCrcSize], 0x77);
}

TEST(BufferPoolTest, DropAllNoFlushLosesUnflushedWrites) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 4});
  {
    auto g = pool.NewPage(0);
    ASSERT_TRUE(g.ok());
    g.value().data()->bytes[kPageCrcSize] = 0x99;
    g.value().MarkDirty();
  }
  pool.DropAllNoFlush();  // crash simulation
  bool missed = false;
  auto g = pool.FetchPage(0, &missed);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(missed);
  // write lost, as a crash would
  EXPECT_EQ(g.value().data()->bytes[kPageCrcSize], 0);
}

TEST(BufferPoolTest, NewPageOnBufferedPageRejected) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 4});
  auto a = pool.NewPage(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.NewPage(0).status().code(), StatusCode::kAlreadyExists);
}

TEST(BufferPoolTest, ReadFailurePropagatesAndFreesFrame) {
  MemDisk disk;
  disk.InjectReadFailures(1);
  BufferPool pool(&disk, {.frame_count = 1});
  EXPECT_EQ(pool.FetchPage(0).status().code(), StatusCode::kIOError);
  // The frame must have been returned to the free list.
  EXPECT_TRUE(pool.FetchPage(0).ok());
}

TEST(BufferPoolTest, MoveOnlyGuardTransfersPin) {
  MemDisk disk;
  BufferPool pool(&disk, {.frame_count = 1});
  auto a = pool.FetchPage(0);
  ASSERT_TRUE(a.ok());
  PageGuard g = std::move(a.value());
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(a.value().valid());
  g.Release();
  EXPECT_TRUE(pool.FetchPage(1).ok());  // frame free again
}

}  // namespace
}  // namespace idba
