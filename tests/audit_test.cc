// Unit and integration tests for the online consistency auditor
// (obs/audit.h): watermark monotonicity across the two reset semantics
// (overload resync vs session reset), the coherence version floor,
// visibility obligations against the per-view staleness SLO, strict-mode
// abort, the bounded violation ring / JSON report, and — end to end — an
// injected stale-view fault (a suppressed update dispatch) detected as a
// visibility violation carrying the offending commit's trace id.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/vtime.h"
#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "obs/audit.h"
#include "obs/trace.h"

namespace idba {
namespace {

using obs::AuditInvariant;
using obs::AuditMode;
using obs::AuditViolation;
using obs::ConsistencyAuditor;
using obs::GlobalAuditor;

/// Every test drives the process-global auditor (the hooks in dlc/dlm/net
/// record into it); the fixture brackets each test with a full reset.
class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalAuditor().ResetForTest();
    GlobalAuditor().SetMode(AuditMode::kTrack);
  }
  void TearDown() override { GlobalAuditor().ResetForTest(); }
};

TEST_F(AuditTest, ParseAuditModeRoundTrips) {
  AuditMode mode = AuditMode::kTrack;
  EXPECT_TRUE(obs::ParseAuditMode("off", &mode));
  EXPECT_EQ(mode, AuditMode::kOff);
  EXPECT_TRUE(obs::ParseAuditMode("track", &mode));
  EXPECT_EQ(mode, AuditMode::kTrack);
  EXPECT_TRUE(obs::ParseAuditMode("strict", &mode));
  EXPECT_EQ(mode, AuditMode::kStrict);
  EXPECT_FALSE(obs::ParseAuditMode("paranoid", &mode));
  EXPECT_STREQ(obs::AuditModeName(AuditMode::kStrict), "strict");
}

TEST_F(AuditTest, HooksAreInertWhenOff) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.SetMode(AuditMode::kOff);
  const uint64_t oid = 7;
  auditor.OnNotifyReceived(1, &oid, 1, 100, 0);
  auditor.OnNotifyReceived(1, &oid, 1, 50, 0);  // regression, but off
  EXPECT_EQ(auditor.checks_total(), 0u);
  EXPECT_EQ(auditor.violations_total(), 0u);
}

TEST_F(AuditTest, MonotonicityRegressionIsDetected) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  const uint64_t oid = 7;
  auditor.OnNotifyReceived(1, &oid, 1, 100, /*trace_id=*/42);
  auditor.OnNotifyReceived(1, &oid, 1, 100, 43);  // equal vtime: coalesce ok
  EXPECT_EQ(auditor.violations_total(), 0u);

  auditor.OnNotifyReceived(1, &oid, 1, 50, 44);  // regression
  EXPECT_EQ(auditor.violations_total(), 1u);
  auto violations = auditor.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, AuditInvariant::kMonotonicity);
  EXPECT_EQ(violations[0].subscriber, 1u);
  EXPECT_EQ(violations[0].oid, oid);
  EXPECT_EQ(violations[0].observed, 50);
  EXPECT_EQ(violations[0].expected, 100);
  EXPECT_EQ(violations[0].trace_id, 44u);

  // The high watermark survives the regression: vtime 60 is still stale.
  auditor.OnNotifyReceived(1, &oid, 1, 60, 45);
  EXPECT_EQ(auditor.violations_total(), 2u);
}

TEST_F(AuditTest, SentAndObservedStreamsAreIndependent) {
  // DLM (sender) and DLC (receiver) can share a process — and therefore
  // the global auditor. The server-side send watermark must not poison
  // the client-side observe watermark for the same subscriber/OID.
  ConsistencyAuditor& auditor = GlobalAuditor();
  const uint64_t oid = 9;
  auditor.OnNotifySent(1, &oid, 1, 100, 0);
  auditor.OnNotifyReceived(1, &oid, 1, 50, 0);  // arrives later, lower: fine
  EXPECT_EQ(auditor.violations_total(), 0u);
  auditor.OnNotifySent(1, &oid, 1, 90, 0);  // sender-side regression
  EXPECT_EQ(auditor.violations_total(), 1u);
}

TEST_F(AuditTest, SessionResetForgetsWatermarksResyncKeepsThem) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(10 * kVMillisecond);
  const uint64_t oid = 7;

  // Overload resync: obligations are dropped (their notifications were
  // shed), but the watermark REMAINS — same server, same virtual clocks.
  auditor.OnNotifyDispatched(1, &oid, 1, /*commit_vtime=*/100,
                             /*local_vtime=*/100, 0);
  EXPECT_EQ(auditor.pending_obligations(), 1u);
  auditor.OnResync(1);
  EXPECT_EQ(auditor.pending_obligations(), 0u);
  auditor.OnNotifyReceived(1, &oid, 1, 50, 0);  // regression past a resync
  EXPECT_EQ(auditor.violations_total(), 1u);

  // Session reset: the server may have restarted with fresh clocks —
  // everything about the subscriber is forgotten, so vtime 10 is clean.
  auditor.OnSessionReset(1);
  auditor.OnNotifyReceived(1, &oid, 1, 10, 0);
  EXPECT_EQ(auditor.violations_total(), 1u);
}

TEST_F(AuditTest, CoherenceFloorFlagsStaleDisplayedVersion) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  const uint64_t oid = 7;
  auditor.OnVersionCommitted(1, oid, 5);  // invalidation callback: v5 exists
  auditor.OnViewRefresh(1, oid, /*version=*/4, /*local_vtime=*/0);
  EXPECT_EQ(auditor.violations_total(), 1u);
  auto violations = auditor.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, AuditInvariant::kCoherence);
  EXPECT_EQ(violations[0].observed, 4);
  EXPECT_EQ(violations[0].expected, 5);

  // Displaying v5 is fine and v6 raises the floor; v5 afterwards is stale.
  auditor.OnViewRefresh(1, oid, 5, 0);
  auditor.OnViewRefresh(1, oid, 6, 0);
  EXPECT_EQ(auditor.violations_total(), 1u);
  auditor.OnViewRefresh(1, oid, 5, 0);
  EXPECT_EQ(auditor.violations_total(), 2u);
}

TEST_F(AuditTest, ObligationSettledWithinSloRecordsStaleness) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(50 * kVMillisecond);
  const uint64_t oid = 7;
  auditor.OnNotifyDispatched(1, &oid, 1, /*commit_vtime=*/1000,
                             /*local_vtime=*/2000, 0);
  EXPECT_EQ(auditor.pending_obligations(), 1u);
  auditor.OnViewRefresh(1, oid, 1, /*local_vtime=*/3000);  // within deadline
  EXPECT_EQ(auditor.pending_obligations(), 0u);
  EXPECT_EQ(auditor.violations_total(), 0u);
  // The report carries the settle and the end-to-end staleness sample
  // (3000 - 1000 virtual us, commit -> displayed).
  std::string report = auditor.ReportJson();
  EXPECT_NE(report.find("\"obligations_settled\":1"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"staleness_us\":{\"count\":1"), std::string::npos)
      << report;
}

TEST_F(AuditTest, LateSettleCountsAnSloMissWithoutViolation) {
  // A refresh that lands after the deadline is an SLO *miss*
  // (consistency.slo.violations), not a correctness violation: settling
  // proves the commit WAS reflected, and the settle time may include a
  // Lamport clock catch-up the client cannot control. Only an obligation
  // that expires unsettled becomes a visibility violation.
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(50 * kVMillisecond);
  const uint64_t oid = 7;
  auditor.OnNotifyDispatched(1, &oid, 1, 1000, /*local_vtime=*/2000,
                             /*trace_id=*/77);
  // Refresh lands, but only after the dispatch-anchored deadline passed.
  auditor.OnViewRefresh(1, oid, 1,
                        /*local_vtime=*/2000 + 60 * kVMillisecond);
  EXPECT_EQ(auditor.violations_total(), 0u);
  EXPECT_EQ(auditor.pending_obligations(), 0u);
  std::string report = auditor.ReportJson();
  EXPECT_NE(report.find("\"slo_violations\":1"), std::string::npos) << report;
  EXPECT_NE(report.find("\"obligations_settled\":1"), std::string::npos)
      << report;
}

TEST_F(AuditTest, UnsettledObligationExpiresOnSweep) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(10 * kVMillisecond);
  const uint64_t oid = 7;
  auditor.OnNotifyDispatched(1, &oid, 1, 1000, /*local_vtime=*/1000,
                             /*trace_id=*/88);
  auditor.CheckNow(/*local_vtime=*/1000 + 5 * kVMillisecond);  // not yet due
  EXPECT_EQ(auditor.violations_total(), 0u);
  auditor.CheckNow(1000 + 20 * kVMillisecond);
  EXPECT_EQ(auditor.violations_total(), 1u);
  EXPECT_EQ(auditor.pending_obligations(), 0u);  // expired, not leaked
  auto violations = auditor.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, AuditInvariant::kVisibility);
  EXPECT_EQ(violations[0].trace_id, 88u);
  // A second sweep finds nothing new.
  auditor.CheckNow(1000 + 40 * kVMillisecond);
  EXPECT_EQ(auditor.violations_total(), 1u);
}

TEST_F(AuditTest, DuplicateDispatchKeepsTheEarliestObligation) {
  // Two commits dispatched before any refresh: the obligation keeps the
  // FIRST commit's deadline — the view owes the user the older update
  // first, and the refresh that settles it shows current state anyway.
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(10 * kVMillisecond);
  const uint64_t oid = 7;
  auditor.OnNotifyDispatched(1, &oid, 1, 1000, /*local_vtime=*/1000, 0);
  auditor.OnNotifyDispatched(1, &oid, 1, 2000, /*local_vtime=*/2000, 0);
  EXPECT_EQ(auditor.pending_obligations(), 1u);
  // Past the first deadline (11 vms) but not the second (12 vms): the
  // first commit's obligation governs, so this is already a violation.
  auditor.CheckNow(1000 + 11 * kVMillisecond + 500);
  EXPECT_EQ(auditor.violations_total(), 1u);
}

TEST_F(AuditTest, ViolationRingIsBoundedAndReportedAsJson) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  const uint64_t oid = 7;
  auditor.OnNotifyReceived(1, &oid, 1, 1000000, 0);
  const size_t excess = 6;
  for (size_t i = 0; i < ConsistencyAuditor::kViolationRing + excess; ++i) {
    auditor.OnNotifyReceived(1, &oid, 1, static_cast<int64_t>(i), 0);
  }
  EXPECT_EQ(auditor.violations_total(),
            ConsistencyAuditor::kViolationRing + excess);
  EXPECT_EQ(auditor.Violations().size(), ConsistencyAuditor::kViolationRing);
  std::string report = auditor.ReportJson();
  EXPECT_NE(report.find("\"mode\":\"track\""), std::string::npos);
  EXPECT_NE(report.find("\"violations_dropped\":6"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"invariant\":\"monotonicity\""), std::string::npos);
  EXPECT_NE(report.find("commit vtime regressed"), std::string::npos);
}

TEST_F(AuditTest, StrictModeAbortsOnViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ConsistencyAuditor& auditor = GlobalAuditor();
  const uint64_t oid = 7;
  auditor.OnNotifyReceived(1, &oid, 1, 100, 0);
  EXPECT_DEATH(
      {
        auditor.SetMode(AuditMode::kStrict);
        auditor.OnNotifyReceived(1, &oid, 1, 50, 0);
      },
      "");
  // The parent process (fork-based death test) is untouched.
  EXPECT_EQ(auditor.violations_total(), 0u);
}

// --- End to end: an injected stale-view fault is caught, with trace id ----
//
// A real in-process deployment with an NMS view. The fault: the DLC
// swallows one committed update dispatch AFTER the auditor has observed it
// (TestSuppressUpdateDispatches), so the display keeps showing the old
// value — exactly the class of silent staleness bug the auditor exists to
// catch. The resulting violation must identify the subscriber and OID and
// carry the offending commit's trace id (the commit runs under a forced
// root span, which the notification bus stamps into the envelope).
TEST_F(AuditTest, InjectedStaleViewFaultIsDetectedWithTraceId) {
  ConsistencyAuditor& auditor = GlobalAuditor();
  auditor.set_staleness_slo_us(50 * kVMillisecond);

  Deployment dep;
  NmsConfig config;
  config.num_nodes = 8;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;
  NmsDatabase db = PopulateNms(&dep.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&dep.display_schema(), dep.server().schema(),
                                db.schema)
          .value();

  auto viewer = dep.NewSession(100);
  auto writer = dep.NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = dep.display_schema().Find(dcs.color_coded_link);
  ASSERT_NE(dc, nullptr);
  Oid oid = db.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  auto commit_utilization = [&](double value) {
    Result<TxnId> t = writer->client().BeginTxn();
    ASSERT_TRUE(t.ok());
    DatabaseObject obj = writer->client().Read(t.value(), oid).value();
    ASSERT_TRUE(
        obj.SetByName(writer->client().schema(), "Utilization", Value(value))
            .ok());
    ASSERT_TRUE(writer->client().Write(t.value(), std::move(obj)).ok());
    ASSERT_TRUE(writer->client().Commit(t.value()).ok());
  };

  // Healthy round: commit, pump, refresh — the obligation settles inside
  // the SLO window and nothing is flagged.
  commit_utilization(0.25);
  EXPECT_EQ(viewer->PumpOnce(), 1);
  EXPECT_EQ(auditor.violations_total(), 0u);
  EXPECT_EQ(auditor.pending_obligations(), 0u);
  EXPECT_NE(auditor.ReportJson().find("\"obligations_settled\":1"),
            std::string::npos);

  // Fault round: the next dispatch is swallowed after the auditor saw it.
  viewer->dlc().TestSuppressUpdateDispatches(1);
  {
    obs::Span span = obs::Span::StartRoot("audit_test.stale_commit",
                                          /*force=*/true);
    commit_utilization(0.75);
  }
  viewer->PumpOnce();

  // The fault is real: the display still shows the pre-commit value.
  auto dobs = view->display_objects();
  ASSERT_EQ(dobs.size(), 1u);
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.25));
  // ...and the auditor holds an unsettled obligation, not yet a violation.
  EXPECT_EQ(auditor.pending_obligations(), 1u);
  EXPECT_EQ(auditor.violations_total(), 0u);

  // Once the (virtual) deadline passes, the sweep flags the stale view.
  auditor.CheckNow(viewer->client().clock().Now() + 1000 * kVMillisecond);
  EXPECT_EQ(auditor.violations_total(), 1u);
  auto violations = auditor.Violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, AuditInvariant::kVisibility);
  EXPECT_EQ(violations[0].subscriber, 100u);
  EXPECT_EQ(violations[0].oid, oid.value);
  EXPECT_NE(violations[0].trace_id, 0u)
      << "violation record must join the offending commit's trace";
  EXPECT_EQ(auditor.pending_obligations(), 0u);
}

}  // namespace
}  // namespace idba
