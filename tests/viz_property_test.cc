// Randomized property tests for the visualization substrates.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "viz/pdq_tree.h"
#include "viz/treemap.h"

namespace idba {
namespace {

TreemapNode RandomTree(Rng& rng, int depth) {
  TreemapNode node;
  node.label = "n";
  node.tag = rng.NextU64();
  if (depth == 0 || rng.NextBool(0.3)) {
    node.weight = 0.1 + rng.NextDouble() * 10;
    return node;
  }
  int kids = 1 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < kids; ++i) {
    node.children.push_back(RandomTree(rng, depth - 1));
  }
  return node;
}

class TreemapRandomProperty
    : public ::testing::TestWithParam<std::tuple<TreemapAlgorithm, uint64_t>> {};

TEST_P(TreemapRandomProperty, AreasProportionalAndCovering) {
  auto [algorithm, seed] = GetParam();
  Rng rng(seed);
  TreemapNode root = RandomTree(rng, 4);
  if (root.is_leaf()) {
    // Degenerate single-leaf tree: whole bounds.
    root.children.push_back(root);
  }
  Rect bounds{0, 0, 640, 480};
  TreemapOptions opts;
  opts.algorithm = algorithm;
  auto rects = LayoutTreemap(root, bounds, opts);
  ASSERT_TRUE(rects.ok());
  double total_weight = root.TotalWeight();
  double leaf_area = 0;
  for (const auto& r : rects.value()) {
    if (!r.leaf) continue;
    leaf_area += r.rect.area();
    double expected = bounds.area() * r.weight / total_weight;
    EXPECT_NEAR(r.rect.area(), expected, expected * 1e-6 + 1e-6);
    EXPECT_GE(r.rect.x, bounds.x - 1e-9);
    EXPECT_LE(r.rect.right(), bounds.right() + 1e-6);
    EXPECT_GE(r.rect.y, bounds.y - 1e-9);
    EXPECT_LE(r.rect.bottom(), bounds.bottom() + 1e-6);
  }
  EXPECT_NEAR(leaf_area, bounds.area(), bounds.area() * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, TreemapRandomProperty,
    ::testing::Combine(::testing::Values(TreemapAlgorithm::kSliceAndDice,
                                         TreemapAlgorithm::kSquarified),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

PdqNode RandomPdq(Rng& rng, int depth) {
  PdqNode node;
  node.label = "n";
  node.attributes["Utilization"] = rng.NextDouble();
  node.attributes["Status"] = static_cast<double>(rng.NextBelow(2));
  if (depth == 0 || rng.NextBool(0.3)) return node;
  int kids = 1 + static_cast<int>(rng.NextBelow(4));
  for (int i = 0; i < kids; ++i) {
    node.children.push_back(RandomPdq(rng, depth - 1));
  }
  return node;
}

class PdqRandomProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PdqRandomProperty, VisiblePlusPrunedEqualsTotal) {
  Rng rng(GetParam());
  PdqNode root = RandomPdq(rng, 5);
  size_t total = root.TotalCount();
  for (double threshold : {0.0, 0.3, 0.7, 1.0}) {
    std::vector<DynamicQuery> queries = {
        {DynamicQuery::kAllLevels, "Utilization", 0.0, threshold}};
    auto layout = LayoutPdqTree(root, queries);
    ASSERT_TRUE(layout.ok());
    EXPECT_EQ(layout.value().visible_count + layout.value().pruned_count, total)
        << "threshold " << threshold;
    EXPECT_EQ(layout.value().nodes.size(), layout.value().visible_count);
  }
}

TEST_P(PdqRandomProperty, TighterQueriesNeverShowMore) {
  Rng rng(GetParam() + 100);
  PdqNode root = RandomPdq(rng, 5);
  size_t prev_visible = root.TotalCount() + 1;
  for (double threshold : {1.0, 0.8, 0.6, 0.4, 0.2, 0.0}) {
    std::vector<DynamicQuery> queries = {
        {DynamicQuery::kAllLevels, "Utilization", 0.0, threshold}};
    auto layout = LayoutPdqTree(root, queries).value();
    EXPECT_LE(layout.visible_count, prev_visible);
    prev_visible = layout.visible_count;
  }
}

TEST_P(PdqRandomProperty, ParentsAlwaysPrecedeChildren) {
  Rng rng(GetParam() + 200);
  PdqNode root = RandomPdq(rng, 5);
  auto layout = LayoutPdqTree(root, {}).value();
  for (size_t i = 0; i < layout.nodes.size(); ++i) {
    int parent = layout.nodes[i].parent_index;
    if (parent >= 0) {
      EXPECT_LT(static_cast<size_t>(parent), i);
      EXPECT_EQ(layout.nodes[parent].level, layout.nodes[i].level - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdqRandomProperty,
                         ::testing::Values(10u, 20u, 30u, 40u));

}  // namespace
}  // namespace idba
