// Focused unit tests of the Display Lock Manager's internals: eager image
// contents, per-commit batching, client teardown, deployment-mode effects
// on the agent's virtual clock, and the stats report.

#include <gtest/gtest.h>

#include "core/stats_report.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

class DlmUnitTest : public ::testing::Test {
 protected:
  void Init(DlmOptions opts = {}) {
    DeploymentOptions dopts;
    dopts.dlm = opts;
    dopts.server.integrated_display_locks = opts.integrated;
    deployment_ = std::make_unique<Deployment>(dopts);
    NmsConfig config;
    config.num_nodes = 6;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
  }

  void Update(ClientApi* writer, Oid oid, double util) {
    const SchemaCatalog& cat = writer->schema();
    TxnId t = writer->Begin();
    DatabaseObject link = writer->Read(t, oid).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(util)).ok());
    ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
    ASSERT_TRUE(writer->Commit(t).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
};

TEST_F(DlmUnitTest, EagerNotificationCarriesExactImages) {
  Init(DlmOptions{.eager_shipping = true});
  auto holder = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(deployment_->dlm().Lock(100, oid, 0).ok());

  Update(&writer->client(), oid, 0.42);
  auto env = holder->client().inbox().Poll();
  ASSERT_TRUE(env.has_value());
  const auto* msg = dynamic_cast<const UpdateNotifyMessage*>(env->msg.get());
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->committed);
  ASSERT_EQ(msg->updated.size(), 1u);
  EXPECT_EQ(msg->updated[0], oid);
  ASSERT_EQ(msg->images.size(), 1u);
  EXPECT_EQ(msg->images[0].oid(), oid);
  EXPECT_EQ(msg->images[0]
                .GetByName(deployment_->server().schema(), "Utilization")
                .value(),
            Value(0.42));
  // Eager message is bigger on the wire than the oid list alone.
  EXPECT_GT(msg->WireBytes(), 32u + 8u);
}

TEST_F(DlmUnitTest, LazyNotificationCarriesOidsOnly) {
  Init();
  auto holder = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(deployment_->dlm().Lock(100, oid, 0).ok());
  Update(&writer->client(), oid, 0.5);
  auto env = holder->client().inbox().Poll();
  ASSERT_TRUE(env.has_value());
  const auto* msg = dynamic_cast<const UpdateNotifyMessage*>(env->msg.get());
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->images.empty());
  EXPECT_EQ(msg->commit_vtime > 0, true);
}

TEST_F(DlmUnitTest, MultiObjectCommitBatchesPerClient) {
  Init();
  auto holder1 = deployment_->NewSession(100);
  auto holder2 = deployment_->NewSession(101);
  auto writer = deployment_->NewSession(102);
  // holder1 watches links 0,1; holder2 watches link 1 only.
  ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[0], 0).ok());
  ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[1], 0).ok());
  ASSERT_TRUE(deployment_->dlm().Lock(101, db_.link_oids[1], 0).ok());

  // One transaction updates both links.
  const SchemaCatalog& cat = deployment_->server().schema();
  TxnId t = writer->client().Begin();
  for (int i = 0; i < 2; ++i) {
    DatabaseObject link = writer->client().Read(t, db_.link_oids[i]).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.6)).ok());
    ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  }
  ASSERT_TRUE(writer->client().Commit(t).ok());

  // holder1: ONE message naming both oids; holder2: one message, one oid.
  ASSERT_EQ(holder1->client().inbox().pending(), 1u);
  ASSERT_EQ(holder2->client().inbox().pending(), 1u);
  auto env1 = holder1->client().inbox().Poll();
  const auto* msg1 = dynamic_cast<const UpdateNotifyMessage*>(env1->msg.get());
  EXPECT_EQ(msg1->updated.size(), 2u);
  auto env2 = holder2->client().inbox().Poll();
  const auto* msg2 = dynamic_cast<const UpdateNotifyMessage*>(env2->msg.get());
  EXPECT_EQ(msg2->updated.size(), 1u);
  EXPECT_EQ(msg2->updated[0], db_.link_oids[1]);
}

TEST_F(DlmUnitTest, ErasedObjectsNotifyHolders) {
  Init();
  auto holder = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(deployment_->dlm().Lock(100, oid, 0).ok());

  TxnId t = writer->client().Begin();
  ASSERT_TRUE(writer->client().EraseObject(t, oid).ok());
  ASSERT_TRUE(writer->client().Commit(t).ok());

  auto env = holder->client().inbox().Poll();
  ASSERT_TRUE(env.has_value());
  const auto* msg = dynamic_cast<const UpdateNotifyMessage*>(env->msg.get());
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->erased.size(), 1u);
  EXPECT_EQ(msg->erased[0], oid);
}

TEST_F(DlmUnitTest, ReleaseClientDropsEverything) {
  Init();
  auto writer = deployment_->NewSession(101);
  ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[0], 0).ok());
  ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[1], 0).ok());
  EXPECT_EQ(deployment_->dlm().locked_object_count(), 2u);
  deployment_->dlm().ReleaseClient(100);
  EXPECT_EQ(deployment_->dlm().locked_object_count(), 0u);
  // Releasing an unknown client is a no-op.
  deployment_->dlm().ReleaseClient(999);
}

TEST_F(DlmUnitTest, AgentModeChargesReportHops) {
  // The agent DLM's clock must run ahead of the integrated one for the
  // same event (two extra hops on the causal path — the §4.1 trade-off).
  VTime agent_clock = 0;
  {
    Init();
    auto holder = deployment_->NewSession(100);
    auto writer = deployment_->NewSession(101);
    ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[0], 0).ok());
    Update(&writer->client(), db_.link_oids[0], 0.5);
    agent_clock = deployment_->dlm().clock().Now();
    EXPECT_GT(deployment_->dlm().update_reports(), 0u);
  }
  {
    Init(DlmOptions{.integrated = true});
    auto holder = deployment_->NewSession(100);
    auto writer = deployment_->NewSession(101);
    ASSERT_TRUE(deployment_->dlm().Lock(100, db_.link_oids[0], 0).ok());
    Update(&writer->client(), db_.link_oids[0], 0.5);
    VTime integrated_clock = deployment_->dlm().clock().Now();
    EXPECT_GT(agent_clock, integrated_clock);
    EXPECT_EQ(deployment_->dlm().update_reports(), 0u);
  }
}

TEST_F(DlmUnitTest, StatsReportCoversEveryComponent) {
  Init();
  auto holder = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = holder->CreateView("v");
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                deployment_->server().schema(), db_.schema)
          .value();
  ASSERT_TRUE(
      view->PopulateFromClass(deployment_->display_schema().Find(dcs.color_coded_link))
          .ok());
  Update(&writer->client(), db_.link_oids[0], 0.5);
  holder->PumpOnce();

  DeploymentStats stats = CollectStats(*deployment_);
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(stats.heap_objects, 0u);
  EXPECT_EQ(stats.display_locked_objects, db_.link_oids.size());
  EXPECT_GT(stats.update_notifications, 0u);
  EXPECT_GT(stats.rpc_messages, 0u);
  EXPECT_GT(stats.notify_messages, 0u);
  std::string report = stats.ToString();
  EXPECT_NE(report.find("commits"), std::string::npos);
  EXPECT_NE(report.find("update notifications"), std::string::npos);

  SessionStats ss = CollectSessionStats(*holder);
  EXPECT_EQ(ss.display_objects, db_.link_oids.size());
  EXPECT_GT(ss.db_cache_objects, 0u);
  EXPECT_EQ(ss.notifications_received, 1u);
  EXPECT_NE(ss.ToString().find("display objects"), std::string::npos);
}

}  // namespace
}  // namespace idba
