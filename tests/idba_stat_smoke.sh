#!/bin/sh
# Smoke test: idba_stat against a live idba_serve.
#
#   idba_stat_smoke.sh <idba_serve> <idba_stat>
#
# Starts the server on an ephemeral port with tracing on, hits it with the
# text report, the JSON report, and a Chrome trace dump, and checks each
# contains what an operator would look for.
set -eu

SERVE="$1"
STAT="$2"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

"$SERVE" --port 0 --trace --slow-rpc-ms 0 >"$WORKDIR/serve.out" 2>&1 &
SERVER_PID=$!

# The bound port is printed on the first stdout line.
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9][0-9]*\).*/\1/p' \
         "$WORKDIR/serve.out" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/serve.out"; \
    echo "FAIL: idba_serve exited early"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: could not find bound port"; exit 1; }

"$STAT" --connect "127.0.0.1:$PORT" >"$WORKDIR/stats.txt"
for section in transport sessions trace metrics; do
  grep -q "$section" "$WORKDIR/stats.txt" || {
    echo "FAIL: text report missing '$section' section:"
    cat "$WORKDIR/stats.txt"
    exit 1
  }
done

# --json is a raw MetricsRegistry::DumpJson passthrough.
"$STAT" --connect "127.0.0.1:$PORT" --json >"$WORKDIR/metrics.json"
grep -q '"counters"' "$WORKDIR/metrics.json" || {
  echo "FAIL: --json missing counters object"; exit 1; }
grep -q '"histograms"' "$WORKDIR/metrics.json" || {
  echo "FAIL: --json missing histograms object"; exit 1; }

# --stats-json keeps the transport/session STATS document.
"$STAT" --connect "127.0.0.1:$PORT" --stats-json >"$WORKDIR/stats.json"
grep -q '"transport"' "$WORKDIR/stats.json" || {
  echo "FAIL: STATS JSON missing transport object"; exit 1; }
grep -q '"metrics"' "$WORKDIR/stats.json" || {
  echo "FAIL: STATS JSON missing metrics object"; exit 1; }

# --prom serves the Prometheus exposition; cache.* series must be present.
"$STAT" --connect "127.0.0.1:$PORT" --prom >"$WORKDIR/metrics.prom"
for series in idba_cache_page_hits_total idba_cache_object_hits_total \
              idba_cache_display_hits_total idba_txn_lock_grants_total; do
  grep -q "^$series " "$WORKDIR/metrics.prom" || {
    echo "FAIL: exposition missing $series"; cat "$WORKDIR/metrics.prom"
    exit 1
  }
done

# --locks / --caches introspection round-trips.
"$STAT" --connect "127.0.0.1:$PORT" --locks >"$WORKDIR/locks.json"
grep -q '"lock_table"' "$WORKDIR/locks.json" || {
  echo "FAIL: --locks missing lock_table"; exit 1; }
grep -q '"top_contended"' "$WORKDIR/locks.json" || {
  echo "FAIL: --locks missing top_contended"; exit 1; }
"$STAT" --connect "127.0.0.1:$PORT" --caches >"$WORKDIR/caches.json"
grep -q '"page"' "$WORKDIR/caches.json" || {
  echo "FAIL: --caches missing page tier"; exit 1; }
grep -q '"dirty_ratio"' "$WORKDIR/caches.json" || {
  echo "FAIL: --caches missing dirty_ratio"; exit 1; }

# --watch prints one windowed report then exits with --watch-count.
"$STAT" --connect "127.0.0.1:$PORT" --watch 1 --watch-count 1 \
  >"$WORKDIR/watch.txt"
grep -q 'window' "$WORKDIR/watch.txt" || {
  echo "FAIL: --watch produced no windowed report"; cat "$WORKDIR/watch.txt"
  exit 1
}

# The two STATS calls above were themselves traced (sampling on): the trace
# dump must be a loadable Chrome trace containing server-side spans.
"$STAT" --connect "127.0.0.1:$PORT" --trace "$WORKDIR/trace.json" 2>/dev/null
grep -q '"traceEvents"' "$WORKDIR/trace.json" || {
  echo "FAIL: trace dump is not a Chrome trace"; exit 1; }
grep -q 'server.execute' "$WORKDIR/trace.json" || {
  echo "FAIL: trace dump has no server.execute span"; exit 1; }

echo "PASS"
