#include "objectmodel/query.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() {
    cls_ = catalog_.DefineClass("Link").value();
    EXPECT_TRUE(catalog_.AddAttribute(cls_, "Utilization", ValueType::kDouble).ok());
    EXPECT_TRUE(catalog_.AddAttribute(cls_, "Hops", ValueType::kInt).ok());
    EXPECT_TRUE(catalog_.AddAttribute(cls_, "Name", ValueType::kString).ok());
    EXPECT_TRUE(catalog_.AddAttribute(cls_, "From", ValueType::kOid).ok());
    obj_ = DatabaseObject(Oid(1), cls_, 4);
    obj_.Set(0, Value(0.5));
    obj_.Set(1, Value(int64_t(3)));
    obj_.Set(2, Value("uplink"));
    obj_.Set(3, Value(Oid(42)));
  }
  bool M(const std::string& attr, CompareOp op, Value v) {
    return AttrPredicate{attr, op, std::move(v)}.Matches(catalog_, obj_);
  }

  SchemaCatalog catalog_;
  ClassId cls_;
  DatabaseObject obj_;
};

TEST_F(PredicateTest, NumericComparisonsWiden) {
  EXPECT_TRUE(M("Utilization", CompareOp::kGt, Value(0.4)));
  EXPECT_FALSE(M("Utilization", CompareOp::kGt, Value(0.5)));
  EXPECT_TRUE(M("Utilization", CompareOp::kGe, Value(0.5)));
  // Int attribute compared against a double value — widened.
  EXPECT_TRUE(M("Hops", CompareOp::kLe, Value(3.5)));
  EXPECT_TRUE(M("Hops", CompareOp::kEq, Value(int64_t(3))));
  EXPECT_TRUE(M("Hops", CompareOp::kNe, Value(int64_t(4))));
  EXPECT_FALSE(M("Hops", CompareOp::kLt, Value(int64_t(3))));
}

TEST_F(PredicateTest, StringComparisonsAreLexicographic) {
  EXPECT_TRUE(M("Name", CompareOp::kEq, Value("uplink")));
  EXPECT_TRUE(M("Name", CompareOp::kGt, Value("alpha")));
  EXPECT_FALSE(M("Name", CompareOp::kLt, Value("alpha")));
}

TEST_F(PredicateTest, OidSupportsEqualityOnly) {
  EXPECT_TRUE(M("From", CompareOp::kEq, Value(Oid(42))));
  EXPECT_TRUE(M("From", CompareOp::kNe, Value(Oid(7))));
  EXPECT_FALSE(M("From", CompareOp::kLt, Value(Oid(99))));
}

TEST_F(PredicateTest, UnknownAttributeNeverMatches) {
  EXPECT_FALSE(M("Nope", CompareOp::kEq, Value(1)));
}

TEST_F(PredicateTest, ConjunctionSemantics) {
  ObjectQuery q;
  q.cls = cls_;
  q.conjuncts = {{"Utilization", CompareOp::kGe, Value(0.4)},
                 {"Hops", CompareOp::kLt, Value(int64_t(10))}};
  EXPECT_TRUE(q.Matches(catalog_, obj_));
  q.conjuncts.push_back({"Name", CompareOp::kEq, Value("other")});
  EXPECT_FALSE(q.Matches(catalog_, obj_));
  ObjectQuery empty;
  empty.cls = cls_;
  EXPECT_TRUE(empty.Matches(catalog_, obj_));  // no conjuncts: match all
}

TEST_F(PredicateTest, WireBytesGrowsWithConjuncts) {
  ObjectQuery q;
  q.cls = cls_;
  size_t base = q.WireBytes();
  q.conjuncts.push_back({"Utilization", CompareOp::kGe, Value(0.4)});
  EXPECT_GT(q.WireBytes(), base);
}

// --- End-to-end query execution ------------------------------------------

class QueryExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 12;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(QueryExecutionTest, ServerFiltersBeforeShipping) {
  auto session = deployment_->NewSession(100);
  ObjectQuery q;
  q.cls = db_.schema.link;
  q.conjuncts = {{"Utilization", CompareOp::kGe, Value(0.5)}};
  auto hot = session->client().RunQuery(q);
  ASSERT_TRUE(hot.ok());
  const SchemaCatalog& cat = deployment_->server().schema();
  size_t expected = 0;
  for (Oid oid : db_.link_oids) {
    auto link = deployment_->server().heap().Read(oid).value();
    if (link.GetByName(cat, "Utilization").value().AsNumber() >= 0.5) ++expected;
  }
  EXPECT_EQ(hot.value().size(), expected);
  EXPECT_GT(expected, 0u);
  EXPECT_LT(expected, db_.link_oids.size());
  // Only matches entered the client cache.
  EXPECT_EQ(session->client().cache().entry_count(), expected);
}

TEST_F(QueryExecutionTest, SubclassQueriesCoverHierarchy) {
  auto session = deployment_->NewSession(100);
  ObjectQuery q;
  q.cls = db_.schema.hardware_component;
  q.include_subclasses = true;
  q.conjuncts = {{"Status", CompareOp::kEq, Value(int64_t(1))}};
  auto up = session->client().RunQuery(q);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value().size(), db_.all_hardware_oids.size());
}

TEST_F(QueryExecutionTest, ViewPopulatedFromQueryTracksOnlyMatches) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("hot-links");
  ObjectQuery q;
  q.cls = db_.schema.link;
  q.conjuncts = {{"Utilization", CompareOp::kGe, Value(0.5)}};
  auto dobs = view->PopulateFromQuery(
      deployment_->display_schema().Find(dcs_.color_coded_link), q);
  ASSERT_TRUE(dobs.ok());
  ASSERT_GT(dobs.value().size(), 0u);
  // Display locks held exactly on the matches.
  size_t locked = 0;
  for (Oid oid : db_.link_oids) {
    locked += deployment_->dlm().holder_count(oid);
  }
  EXPECT_EQ(locked, dobs.value().size());

  // An update to a displayed link refreshes; to a non-displayed one, no
  // notification at all.
  const SchemaCatalog& cat = deployment_->server().schema();
  Oid shown = dobs.value()[0]->sources()[0];
  Oid hidden = kNullOid;
  for (Oid oid : db_.link_oids) {
    if (deployment_->dlm().holder_count(oid) == 0) hidden = oid;
  }
  ASSERT_FALSE(hidden.IsNull());
  for (Oid target : {shown, hidden}) {
    TxnId t = writer->client().Begin();
    DatabaseObject link = writer->client().Read(t, target).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.99)).ok());
    ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
    ASSERT_TRUE(writer->client().Commit(t).ok());
  }
  EXPECT_EQ(viewer->client().inbox().pending(), 1u);  // only `shown`
  viewer->PumpOnce();
  EXPECT_EQ(view->refreshes(), 1u);
}

TEST_F(QueryExecutionTest, QueryChargesVirtualTime) {
  auto session = deployment_->NewSession(100);
  VTime before = session->client().clock().Now();
  ObjectQuery q;
  q.cls = db_.schema.link;
  ASSERT_TRUE(session->client().RunQuery(q).ok());
  EXPECT_GT(session->client().clock().Now(), before);
}

}  // namespace
}  // namespace idba
