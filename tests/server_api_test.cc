// DatabaseServer API edge cases and cost-accounting contracts.
#include <filesystem>

#include <gtest/gtest.h>

#include "client/database_client.h"
#include "core/session.h"

namespace idba {
namespace {

class ServerApiTest : public ::testing::Test {
 protected:
  ServerApiTest() {
    cls_ = server_.schema().DefineClass("Item").value();
    EXPECT_TRUE(server_.schema()
                    .AddAttribute(cls_, "Payload", ValueType::kString)
                    .ok());
  }

  Oid Insert(const std::string& payload) {
    TxnId t = server_.Begin(0);
    Oid oid = server_.AllocateOid();
    DatabaseObject obj(oid, cls_, 1);
    obj.Set(0, Value(payload));
    EXPECT_TRUE(server_.Insert(0, t, std::move(obj), nullptr).ok());
    EXPECT_TRUE(server_.Commit(0, t, nullptr).ok());
    return oid;
  }

  DatabaseServer server_;
  ClassId cls_;
};

TEST_F(ServerApiTest, FetchAccountsBytesAndMisses) {
  Oid oid = Insert(std::string(500, 'p'));
  ASSERT_TRUE(server_.Checkpoint().ok());
  server_.buffer_pool().DropAllNoFlush();

  ServerCallInfo info;
  TxnId t = server_.Begin(7);
  auto obj = server_.Fetch(7, t, oid, &info);
  ASSERT_TRUE(obj.ok());
  EXPECT_GT(info.request_bytes, 0);
  // The reply carries the object: at least the payload's size.
  EXPECT_GT(info.response_bytes, 500);
  EXPECT_GE(info.page_misses, 1);
  ASSERT_TRUE(server_.Commit(7, t, nullptr).ok());

  // Warm fetch: no physical read.
  ServerCallInfo warm;
  TxnId t2 = server_.Begin(7);
  ASSERT_TRUE(server_.Fetch(7, t2, oid, &warm).ok());
  EXPECT_EQ(warm.page_misses, 0);
  ASSERT_TRUE(server_.Commit(7, t2, nullptr).ok());
}

TEST_F(ServerApiTest, FetchCurrentMissingOidIsNotFound) {
  ServerCallInfo info;
  EXPECT_EQ(server_.FetchCurrent(7, Oid(999), &info).status().code(),
            StatusCode::kNotFound);
  EXPECT_GT(info.request_bytes, 0);  // the failed request still traveled
}

TEST_F(ServerApiTest, AbortUnknownTxnIsNotFound) {
  EXPECT_EQ(server_.Abort(0, 424242, nullptr).code(), StatusCode::kNotFound);
  EXPECT_EQ(server_.Commit(0, 424242, nullptr).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServerApiTest, AllocateOidIsMonotonicAndUnique) {
  Oid a = server_.AllocateOid();
  Oid b = server_.AllocateOid();
  Oid c = server_.AllocateOid();
  EXPECT_LT(a.value, b.value);
  EXPECT_LT(b.value, c.value);
}

TEST_F(ServerApiTest, IntegratedDisplayLocksRequireOptIn) {
  EXPECT_EQ(server_.DisplayLock(7, Oid(1)).code(), StatusCode::kNotSupported);
  EXPECT_EQ(server_.DisplayUnlock(7, Oid(1)).code(), StatusCode::kNotSupported);

  DatabaseServerOptions opts;
  opts.integrated_display_locks = true;
  DatabaseServer enabled(opts);
  EXPECT_TRUE(enabled.DisplayLock(7, Oid(1)).ok());
  EXPECT_EQ(enabled.lock_manager().DisplayLockHolders(Oid(1)).size(), 1u);
  EXPECT_TRUE(enabled.DisplayUnlock(7, Oid(1)).ok());
}

TEST_F(ServerApiTest, ScanClassAccountsResponseBytes) {
  for (int i = 0; i < 5; ++i) Insert("payload-" + std::to_string(i));
  ServerCallInfo info;
  auto objs = server_.ScanClass(7, cls_, false, &info);
  ASSERT_TRUE(objs.ok());
  EXPECT_EQ(objs.value().size(), 5u);
  int64_t expected = 0;
  for (const auto& obj : objs.value()) {
    expected += static_cast<int64_t>(obj.WireBytes());
  }
  EXPECT_GE(info.response_bytes, expected);
}

TEST_F(ServerApiTest, CheckpointOnEmptyServerIsFine) {
  EXPECT_TRUE(server_.Checkpoint().ok());
  EXPECT_TRUE(server_.Checkpoint().ok());
}

TEST_F(ServerApiTest, ObserverRegistrationOrderIndependent) {
  int commit_events = 0, intent_events = 0, abort_events = 0;
  server_.AddCommitObserver(
      [&](ClientId, const CommitResult&) { ++commit_events; });
  server_.AddIntentObserver([&](ClientId, TxnId, Oid) { ++intent_events; });
  server_.AddAbortObserver([&](ClientId, TxnId) { ++abort_events; });

  Oid oid = Insert("x");  // fires commit + intent (the insert's X lock)
  EXPECT_EQ(commit_events, 1);
  EXPECT_EQ(intent_events, 1);
  TxnId t = server_.Begin(0);
  ASSERT_TRUE(server_.Erase(0, t, oid, nullptr).ok());
  ASSERT_TRUE(server_.Abort(0, t, nullptr).ok());
  EXPECT_EQ(abort_events, 1);
  EXPECT_EQ(commit_events, 1);  // the abort committed nothing
}

TEST_F(ServerApiTest, DeploymentPropagatesCostModel) {
  DeploymentOptions opts;
  opts.cost.message_base = 123 * kVMillisecond;
  Deployment deployment(opts);
  EXPECT_EQ(deployment.bus().cost_model().options().message_base,
            123 * kVMillisecond);
  EXPECT_EQ(deployment.meter().cost_model().options().message_base,
            123 * kVMillisecond);
}

TEST_F(ServerApiTest, ServerOverFileDisksServesNormally) {
  std::string dir = ::testing::TempDir() + "/idba_api_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  auto data = FileDisk::Open(dir + "/d.idb").value();
  auto wal = FileDisk::Open(dir + "/w.idb").value();
  {
    DatabaseServer server(data.get(), wal.get(), 0, {});
    ClassId cls = server.schema().DefineClass("Item").value();
    ASSERT_TRUE(server.schema().AddAttribute(cls, "P", ValueType::kInt).ok());
    TxnId t = server.Begin(0);
    DatabaseObject obj(server.AllocateOid(), cls, 1);
    obj.Set(0, Value(int64_t(5)));
    ASSERT_TRUE(server.Insert(0, t, std::move(obj), nullptr).ok());
    ASSERT_TRUE(server.Commit(0, t, nullptr).ok());
    ASSERT_TRUE(server.Checkpoint().ok());
    EXPECT_EQ(server.heap().object_count(), 1u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace idba
