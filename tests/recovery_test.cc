#include "txn/recovery.h"

#include <gtest/gtest.h>

#include "txn/txn_manager.h"

namespace idba {
namespace {

DatabaseObject MakeObj(Oid oid, int64_t v) {
  DatabaseObject obj(oid, 1, 1);
  obj.Set(0, Value(v));
  return obj;
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : pool_(&data_disk_, {.frame_count = 32}) {
    heap_ = std::move(HeapStore::Open(&pool_, 0).value());
    wal_ = std::make_unique<Wal>(&wal_disk_);
    mgr_ = std::make_unique<TxnManager>(heap_.get(), wal_.get());
  }

  /// Simulates a crash: drops all buffered (unflushed) data pages, then
  /// reopens the heap from disk and replays the WAL.
  std::unique_ptr<HeapStore> CrashAndRecover(RecoveryStats* stats = nullptr) {
    PageId pages = heap_->data_page_count();
    pool_.DropAllNoFlush();
    recovered_pool_ = std::make_unique<BufferPool>(
        &data_disk_, BufferPoolOptions{.frame_count = 32});
    auto heap = std::move(HeapStore::Open(recovered_pool_.get(), pages).value());
    auto st = RecoverFromWal(&wal_disk_, heap.get());
    EXPECT_TRUE(st.ok()) << st.status().ToString();
    if (stats != nullptr && st.ok()) *stats = st.value();
    return heap;
  }

  MemDisk data_disk_, wal_disk_;
  BufferPool pool_;
  std::unique_ptr<BufferPool> recovered_pool_;
  std::unique_ptr<HeapStore> heap_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<TxnManager> mgr_;
};

TEST_F(RecoveryTest, CommittedWritesSurviveCrash) {
  TxnId t = mgr_->Begin();
  Oid a = mgr_->AllocateOid();
  Oid b = mgr_->AllocateOid();
  ASSERT_TRUE(mgr_->Insert(t, MakeObj(a, 1)).ok());
  ASSERT_TRUE(mgr_->Insert(t, MakeObj(b, 2)).ok());
  ASSERT_TRUE(mgr_->Commit(t).ok());
  // No pool flush: data pages never reached disk.
  auto heap = CrashAndRecover();
  EXPECT_EQ(heap->Read(a).value().Get(0), Value(int64_t(1)));
  EXPECT_EQ(heap->Read(b).value().Get(0), Value(int64_t(2)));
}

TEST_F(RecoveryTest, UncommittedTxnIsInvisibleAfterCrash) {
  TxnId t1 = mgr_->Begin();
  Oid a = mgr_->AllocateOid();
  ASSERT_TRUE(mgr_->Insert(t1, MakeObj(a, 1)).ok());
  ASSERT_TRUE(mgr_->Commit(t1).ok());

  // A loser: updates a, appends WAL records but the commit record is
  // missing (simulate by writing updates + flushing, never committing).
  WalRecord rec;
  rec.type = WalRecordType::kUpdate;
  rec.txn = 999;
  rec.oid = a;
  rec.after = MakeObj(a, 666);
  rec.after.set_version(99);
  ASSERT_TRUE(wal_->Append(std::move(rec)).ok());
  ASSERT_TRUE(wal_->Flush().ok());

  RecoveryStats stats;
  auto heap = CrashAndRecover(&stats);
  EXPECT_EQ(heap->Read(a).value().Get(0), Value(int64_t(1)));
  EXPECT_EQ(stats.committed_txns, 1u);
}

TEST_F(RecoveryTest, UpdatesAndErasesReplayInOrder) {
  Oid a = mgr_->AllocateOid();
  Oid b = mgr_->AllocateOid();
  TxnId t1 = mgr_->Begin();
  ASSERT_TRUE(mgr_->Insert(t1, MakeObj(a, 1)).ok());
  ASSERT_TRUE(mgr_->Insert(t1, MakeObj(b, 2)).ok());
  ASSERT_TRUE(mgr_->Commit(t1).ok());
  TxnId t2 = mgr_->Begin();
  ASSERT_TRUE(mgr_->Put(t2, MakeObj(a, 11)).ok());
  ASSERT_TRUE(mgr_->Erase(t2, b).ok());
  ASSERT_TRUE(mgr_->Commit(t2).ok());

  auto heap = CrashAndRecover();
  EXPECT_EQ(heap->Read(a).value().Get(0), Value(int64_t(11)));
  EXPECT_EQ(heap->Read(a).value().version(), 2u);
  EXPECT_FALSE(heap->Contains(b));
}

TEST_F(RecoveryTest, ReplayIsIdempotentAgainstFlushedPages) {
  // Commit, flush pages to disk (so images are already there), crash,
  // recover: version check must skip the stale redo.
  Oid a = mgr_->AllocateOid();
  TxnId t = mgr_->Begin();
  ASSERT_TRUE(mgr_->Insert(t, MakeObj(a, 7)).ok());
  ASSERT_TRUE(mgr_->Commit(t).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());

  RecoveryStats stats;
  auto heap = CrashAndRecover(&stats);
  EXPECT_EQ(stats.skipped_stale, 1u);
  EXPECT_EQ(heap->Read(a).value().Get(0), Value(int64_t(7)));
  EXPECT_EQ(heap->Read(a).value().version(), 1u);
}

TEST_F(RecoveryTest, ManyTransactionsMixedOutcome) {
  std::vector<Oid> committed_oids, aborted_oids;
  for (int i = 0; i < 30; ++i) {
    TxnId t = mgr_->Begin();
    Oid oid = mgr_->AllocateOid();
    ASSERT_TRUE(mgr_->Insert(t, MakeObj(oid, i)).ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(mgr_->Abort(t).ok());
      aborted_oids.push_back(oid);
    } else {
      ASSERT_TRUE(mgr_->Commit(t).ok());
      committed_oids.push_back(oid);
    }
  }
  RecoveryStats stats;
  auto heap = CrashAndRecover(&stats);
  EXPECT_EQ(stats.committed_txns, committed_oids.size());
  for (Oid oid : committed_oids) EXPECT_TRUE(heap->Contains(oid));
  for (Oid oid : aborted_oids) EXPECT_FALSE(heap->Contains(oid));
}

TEST_F(RecoveryTest, EmptyLogRecoversCleanly) {
  RecoveryStats stats;
  auto heap = CrashAndRecover(&stats);
  EXPECT_EQ(stats.records_scanned, 0u);
  EXPECT_EQ(heap->object_count(), 0u);
}

TEST_F(RecoveryTest, CorruptedWalPageCutsReplayAtCleanPrefix) {
  // Enough single-insert transactions that the log spans several pages.
  std::vector<Oid> oids;
  for (int i = 0; i < 200; ++i) {
    TxnId t = mgr_->Begin();
    Oid oid = mgr_->AllocateOid();
    ASSERT_TRUE(mgr_->Insert(t, MakeObj(oid, i)).ok());
    ASSERT_TRUE(mgr_->Commit(t).ok());
    oids.push_back(oid);
  }
  ASSERT_GE(wal_disk_.PageCount(), 4u);

  // Bit-flip a record page in the middle of the log (page 0 is the WAL
  // header). Recovery must cut the scan there — not crash, not replay past
  // the damage.
  PageId victim = 1 + (wal_disk_.PageCount() - 1) / 2;
  wal_disk_.CorruptPage(victim, 300, 0x20);

  RecoveryStats stats;
  auto heap = CrashAndRecover(&stats);
  EXPECT_GT(heap->object_count(), 0u);
  EXPECT_LT(heap->object_count(), oids.size());
  // Whatever survived is a prefix of commit order: no transaction after the
  // cut resurrected, none before it lost.
  size_t present = 0;
  while (present < oids.size() && heap->Contains(oids[present])) ++present;
  EXPECT_EQ(present, heap->object_count());
  for (size_t i = present; i < oids.size(); ++i) {
    EXPECT_FALSE(heap->Contains(oids[i]));
  }
}

TEST_F(RecoveryTest, CorruptedDataPageSurfacesCorruptionNotGarbage) {
  TxnId t = mgr_->Begin();
  Oid a = mgr_->AllocateOid();
  ASSERT_TRUE(mgr_->Insert(t, MakeObj(a, 11)).ok());
  ASSERT_TRUE(mgr_->Commit(t).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());
  PageId pages = heap_->data_page_count();
  ASSERT_GT(pages, 0u);

  pool_.DropAllNoFlush();
  for (PageId p = 0; p < pages; ++p) data_disk_.CorruptPage(p, 900, 0x01);

  // Reopening the heap reads every data page; the damage must surface as
  // Corruption, never as silently decoded garbage.
  BufferPool pool(&data_disk_, {.frame_count = 32});
  auto heap = HeapStore::Open(&pool, pages);
  ASSERT_FALSE(heap.ok());
  EXPECT_EQ(heap.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace idba
