#include "storage/disk.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace idba {
namespace {

PageData MakePage(uint8_t fill) {
  PageData p;
  std::memset(p.bytes, fill, kPageSize);
  return p;
}

TEST(MemDiskTest, ReadBackWhatWasWritten) {
  MemDisk disk;
  ASSERT_TRUE(disk.WritePage(3, MakePage(0xAA)).ok());
  PageData out;
  ASSERT_TRUE(disk.ReadPage(3, &out).ok());
  // Bytes [0, kPageCrcSize) hold the page checksum; payload starts after.
  EXPECT_EQ(out.bytes[kPageCrcSize], 0xAA);
  EXPECT_EQ(out.bytes[kPageSize - 1], 0xAA);
}

TEST(MemDiskTest, UnwrittenPagesReadAsZero) {
  MemDisk disk;
  PageData out = MakePage(0xFF);
  ASSERT_TRUE(disk.ReadPage(7, &out).ok());
  EXPECT_EQ(out.bytes[0], 0);
  EXPECT_EQ(out.bytes[kPageSize - 1], 0);
}

TEST(MemDiskTest, PageCountTracksHighestWrite) {
  MemDisk disk;
  EXPECT_EQ(disk.PageCount(), 0u);
  ASSERT_TRUE(disk.WritePage(9, MakePage(1)).ok());
  EXPECT_EQ(disk.PageCount(), 10u);
}

TEST(MemDiskTest, CountersTrackIo) {
  MemDisk disk;
  PageData p;
  ASSERT_TRUE(disk.WritePage(0, MakePage(1)).ok());
  ASSERT_TRUE(disk.ReadPage(0, &p).ok());
  ASSERT_TRUE(disk.ReadPage(0, &p).ok());
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.reads(), 2u);
}

TEST(MemDiskTest, InjectedFailuresFireThenClear) {
  MemDisk disk;
  disk.InjectReadFailures(2);
  PageData p;
  EXPECT_EQ(disk.ReadPage(0, &p).code(), StatusCode::kIOError);
  EXPECT_EQ(disk.ReadPage(0, &p).code(), StatusCode::kIOError);
  EXPECT_TRUE(disk.ReadPage(0, &p).ok());
}

TEST(MemDiskTest, BitFlipDetectedOnRead) {
  MemDisk disk;
  ASSERT_TRUE(disk.WritePage(2, MakePage(0x5A)).ok());
  Counter* failures =
      GlobalMetrics().GetCounter("storage.page.checksum_failures_total");
  const uint64_t before = failures->Get();
  disk.CorruptPage(2, 1000, 0x01);
  PageData out;
  Status st = disk.ReadPage(2, &out);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(failures->Get(), before + 1);
  // Other pages stay readable.
  ASSERT_TRUE(disk.WritePage(3, MakePage(0x11)).ok());
  EXPECT_TRUE(disk.ReadPage(3, &out).ok());
}

TEST(MemDiskTest, TornWriteDetectedOnRead) {
  MemDisk disk;
  ASSERT_TRUE(disk.WritePage(0, MakePage(0xC3)).ok());
  disk.TornWrite(0, kPageSize / 2);  // tail lost mid-write
  PageData out;
  EXPECT_EQ(disk.ReadPage(0, &out).code(), StatusCode::kCorruption);
}

TEST(MemDiskTest, CorruptingTheCrcItselfIsDetected) {
  MemDisk disk;
  ASSERT_TRUE(disk.WritePage(1, MakePage(0x42)).ok());
  disk.CorruptPage(1, 0, 0x80);  // flip a bit inside the stored checksum
  PageData out;
  EXPECT_EQ(disk.ReadPage(1, &out).code(), StatusCode::kCorruption);
}

class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/idba_filedisk_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileDiskTest, PersistsAcrossReopen) {
  {
    auto disk = FileDisk::Open(path_);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE(disk.value()->WritePage(2, MakePage(0x5C)).ok());
    ASSERT_TRUE(disk.value()->Sync().ok());
  }
  auto disk = FileDisk::Open(path_);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk.value()->PageCount(), 3u);
  PageData out;
  ASSERT_TRUE(disk.value()->ReadPage(2, &out).ok());
  EXPECT_EQ(out.bytes[100], 0x5C);
}

TEST_F(FileDiskTest, ReadPastEndIsZeros) {
  auto disk = FileDisk::Open(path_);
  ASSERT_TRUE(disk.ok());
  PageData out = MakePage(0xEE);
  ASSERT_TRUE(disk.value()->ReadPage(50, &out).ok());
  EXPECT_EQ(out.bytes[0], 0);
}

TEST_F(FileDiskTest, OnDiskBitFlipDetectedAfterReopen) {
  {
    auto disk = FileDisk::Open(path_);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE(disk.value()->WritePage(1, MakePage(0x3D)).ok());
    ASSERT_TRUE(disk.value()->Sync().ok());
  }
  // Flip one payload bit directly in the file, as silent media corruption
  // would.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(kPageSize + 512), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  ASSERT_NE(std::fputc(c ^ 0x04, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);

  auto disk = FileDisk::Open(path_);
  ASSERT_TRUE(disk.ok());
  PageData out;
  EXPECT_EQ(disk.value()->ReadPage(1, &out).code(), StatusCode::kCorruption);
  // Page 0 was never written: reads back as zeros, which is always valid.
  EXPECT_TRUE(disk.value()->ReadPage(0, &out).ok());
}

TEST_F(FileDiskTest, OpenFailsOnBadPath) {
  auto disk = FileDisk::Open("/nonexistent_dir_xyz/file");
  EXPECT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace idba
