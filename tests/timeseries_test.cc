// MetricsTimeSeries: ring retention/wraparound, per-window delta
// correctness (including under concurrent recording), and the per-window
// percentile reconstruction from cumulative bucket counts.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "obs/timeseries.h"

namespace idba {
namespace obs {
namespace {

TEST(TimeSeries, RingWrapsAtRetention) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  MetricsTimeSeries ts(&reg, /*retain=*/3);
  for (int i = 1; i <= 5; ++i) {
    c->Add(static_cast<uint64_t>(i));
    ts.Tick();
  }
  EXPECT_EQ(ts.window_count(), 3u);
  std::vector<MetricsWindow> w = ts.Windows();
  ASSERT_EQ(w.size(), 3u);
  // Ticks 3, 4, 5 survive: absolute values 1+2+3=6, 10, 15.
  EXPECT_EQ(w[0].counters.at("x"), 6u);
  EXPECT_EQ(w[1].counters.at("x"), 10u);
  EXPECT_EQ(w[2].counters.at("x"), 15u);
  // Deltas stay correct across the wrap (computed vs the previous tick,
  // not vs the oldest retained window).
  EXPECT_EQ(w[1].counter_deltas.at("x"), 4u);
  EXPECT_EQ(w[2].counter_deltas.at("x"), 5u);
  // Ticks are time-ordered.
  EXPECT_LE(w[0].at_us, w[1].at_us);
  EXPECT_LE(w[1].at_us, w[2].at_us);
}

TEST(TimeSeries, FirstWindowDeltaIsAbsolute) {
  MetricsRegistry reg;
  reg.GetCounter("boot")->Add(42);
  MetricsTimeSeries ts(&reg, 8);
  MetricsWindow w = ts.Tick();
  EXPECT_EQ(w.counter_deltas.at("boot"), 42u);
  EXPECT_EQ(w.interval_us, 0);
}

TEST(TimeSeries, DeltasSumToAbsoluteUnderConcurrentRecording) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hot");
  Histogram* h = reg.GetHistogram("lat");
  MetricsTimeSeries ts(&reg, /*retain=*/64);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Add();
        h->Record(17.0);
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    ts.Tick();
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  ts.Tick();  // capture the tail

  uint64_t delta_sum = 0, hist_delta_sum = 0;
  for (const MetricsWindow& w : ts.Windows()) {
    auto it = w.counter_deltas.find("hot");
    if (it != w.counter_deltas.end()) delta_sum += it->second;
    auto ht = w.histogram_deltas.find("lat");
    if (ht != w.histogram_deltas.end()) hist_delta_sum += ht->second.count;
  }
  // No window dropped (retain 64 > 21 ticks), so per-window deltas must
  // partition the cumulative totals exactly — no double count, no loss.
  EXPECT_EQ(delta_sum, c->Get());
  EXPECT_EQ(hist_delta_sum, h->count());
}

TEST(TimeSeries, WindowPercentilesTrackTheWindow) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat");
  MetricsTimeSeries ts(&reg, 8);
  for (int i = 0; i < 200; ++i) h->Record(2.0);
  ts.Tick();
  for (int i = 0; i < 200; ++i) h->Record(8000.0);
  MetricsWindow w = ts.Tick();
  const auto& d = w.histogram_deltas.at("lat");
  EXPECT_EQ(d.count, 200u);
  // Only the second window's 8000s count: its p50 must be far above the
  // all-time median (which mixes the 2s).
  EXPECT_GT(d.p50, 1000.0);
  EXPECT_GE(d.p99, d.p50);
}

TEST(TimeSeries, PercentileOfDeltasHandlesEqualAndEmpty) {
  std::vector<uint64_t> prev(static_cast<size_t>(Histogram::kNumBuckets), 0);
  std::vector<uint64_t> cur = prev;
  EXPECT_EQ(PercentileOfDeltas(cur, prev, 0.5), 0.0);
  cur[10] = 100;  // all mass in one bucket
  const double p50 = PercentileOfDeltas(cur, prev, 0.5);
  EXPECT_GT(p50, Histogram::BucketUpperBound(9));
  EXPECT_LE(p50, Histogram::BucketUpperBound(10));
}

TEST(TimeSeries, ClearEmptiesRingButKeepsTicking) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  MetricsTimeSeries ts(&reg, 4);
  c->Add(5);
  ts.Tick();
  ts.Clear();
  EXPECT_EQ(ts.window_count(), 0u);
  c->Add(3);
  MetricsWindow w = ts.Tick();
  EXPECT_EQ(w.counters.at("x"), 8u);
}

TEST(TimeSeries, DumpJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("a.b")->Add(2);
  reg.GetHistogram("h")->Record(5);
  MetricsTimeSeries ts(&reg, 4);
  ts.Tick();
  ts.Tick();
  const std::string json = ts.DumpJson();
  EXPECT_NE(json.find("\"retain\":4"), std::string::npos);
  EXPECT_NE(json.find("\"windows\":["), std::string::npos);
  EXPECT_NE(json.find("\"counter_deltas\""), std::string::npos);
  EXPECT_NE(json.find("\"a.b\":2"), std::string::npos);
  // last_n limits the dump.
  const std::string last1 = ts.DumpJson(1);
  EXPECT_LT(last1.size(), json.size());
}

}  // namespace
}  // namespace obs
}  // namespace idba
