// Conformance tests for the Prometheus text exposition (obs/prom_export).
//
// The format contract (text format 0.0.4) that scrapers depend on:
//   - metric names restricted to [a-zA-Z_:][a-zA-Z0-9_:]*
//   - counters suffixed `_total`, preceded by HELP and TYPE lines
//   - histogram `_bucket` series cumulative and monotone in `le`, with the
//     final `+Inf` bucket equal to `_count`
//   - label values escaped (backslash, newline, double quote)

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "obs/prom_export.h"
#include "tools/prom_text.h"

namespace idba {
namespace obs {
namespace {

TEST(PromSanitize, MapsInvalidCharsToUnderscore) {
  EXPECT_EQ(PromSanitizeName("cache.object.hits"), "cache_object_hits");
  EXPECT_EQ(PromSanitizeName("rpc.Fetch.total_us"), "rpc_Fetch_total_us");
  EXPECT_EQ(PromSanitizeName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(PromSanitizeName("colons:ok"), "colons:ok");
}

TEST(PromSanitize, LeadingDigitGetsPrefix) {
  EXPECT_EQ(PromSanitizeName("9lives"), "_9lives");
  EXPECT_EQ(PromSanitizeName(""), "_");
}

TEST(PromEscape, HelpAndLabel) {
  EXPECT_EQ(PromEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(PromEscapeLabel("say \"hi\"\n"), "say \\\"hi\\\"\\n");
}

TEST(PromExport, CounterRendersTotalWithHelpAndType) {
  MetricsRegistry reg;
  reg.GetCounter("txn.commits")->Add(7);
  const std::string out = PromExport(reg);
  EXPECT_NE(out.find("# HELP idba_txn_commits_total counter txn.commits\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE idba_txn_commits_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nidba_txn_commits_total 7\n"), std::string::npos);
}

TEST(PromExport, GaugeRendersCurrentValue) {
  MetricsRegistry reg;
  double level = 3.5;
  ScopedGauge g(&reg, "pool.depth", [&] { return level; });
  std::string out = PromExport(reg);
  EXPECT_NE(out.find("# TYPE idba_pool_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("idba_pool_depth 3.5\n"), std::string::npos);
  level = 4.0;
  out = PromExport(reg);
  EXPECT_NE(out.find("idba_pool_depth 4\n"), std::string::npos);
}

TEST(PromExport, HistogramBucketsCumulativeAndInfEqualsCount) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("rpc.Fetch.total_us");
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  const std::string out = PromExport(reg);

  // Reuse the tools-side parser: the exporter and its consumers must agree.
  tools::PromSamples samples = tools::ParsePromText(out);
  tools::PromHistogram parsed =
      tools::ExtractHistogram(samples, "idba_rpc_Fetch_total_us");
  ASSERT_TRUE(parsed.found);
  ASSERT_FALSE(parsed.bounds.empty());

  // Cumulative counts never decrease; bounds strictly increase; the last
  // bucket is +Inf and equals _count.
  for (size_t i = 1; i < parsed.bounds.size(); ++i) {
    EXPECT_LT(parsed.bounds[i - 1], parsed.bounds[i]);
    EXPECT_LE(parsed.cumulative[i - 1], parsed.cumulative[i]);
  }
  EXPECT_TRUE(std::isinf(parsed.bounds.back()));
  EXPECT_EQ(parsed.cumulative.back(), parsed.count);
  EXPECT_EQ(parsed.count, 1000u);
  EXPECT_DOUBLE_EQ(parsed.sum, 1000.0 * 1001.0 / 2.0);
}

TEST(PromExport, EmptyHistogramStillExposesInfBucket) {
  MetricsRegistry reg;
  (void)reg.GetHistogram("quiet.hist");
  const std::string out = PromExport(reg);
  EXPECT_NE(out.find("idba_quiet_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(out.find("idba_quiet_hist_count 0\n"), std::string::npos);
}

TEST(PromExport, EveryNonCommentLineParses) {
  MetricsRegistry reg;
  reg.GetCounter("a.b")->Add(1);
  reg.GetHistogram("c.d")->Record(42);
  ScopedGauge g(&reg, "e.f", [] { return 1.25; });
  const std::string out = PromExport(reg);
  size_t lines = 0, parsed = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    const std::string line = out.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') ++lines;
    pos = eol + 1;
  }
  parsed = tools::ParsePromText(out).size();
  EXPECT_EQ(lines, parsed);
  EXPECT_GT(parsed, 0u);
}

TEST(PromExport, QuantileOfDeltaIgnoresPriorWindow) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("w.hist");
  // Window 1: small values.
  for (int i = 0; i < 100; ++i) h->Record(1.0);
  tools::PromSamples s1 = tools::ParsePromText(PromExport(reg));
  // Window 2: large values only.
  for (int i = 0; i < 100; ++i) h->Record(5000.0);
  tools::PromSamples s2 = tools::ParsePromText(PromExport(reg));

  tools::PromHistogram h1 = tools::ExtractHistogram(s1, "idba_w_hist");
  tools::PromHistogram h2 = tools::ExtractHistogram(s2, "idba_w_hist");
  // The all-time p50 mixes both populations; the windowed p50 must reflect
  // only the second window's 5000s.
  const double windowed_p50 = tools::QuantileOfDelta(h2, h1, 0.50);
  EXPECT_GT(windowed_p50, 1000.0);
  const double alltime_p50 =
      tools::QuantileOfDelta(h2, tools::PromHistogram{}, 0.50);
  EXPECT_LT(alltime_p50, windowed_p50);
}

}  // namespace
}  // namespace obs
}  // namespace idba
