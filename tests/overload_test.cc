// End-to-end tests of the overload-protection ladder (DESIGN.md §9):
// slow-subscriber isolation (a stalled client must not inflate other
// clients' commit latency), admission control (Overloaded rejections with
// a retry-after hint the retry loop honors), notification coalescing, and
// the forced-resync / disconnect escalations.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "client/txn_retry.h"
#include "common/codec.h"
#include "core/session.h"
#include "net/fault_injector.h"
#include "net/remote_client.h"
#include "net/socket.h"
#include "net/tcp_server.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "obs/audit.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

/// Spins (real time) until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// One read-modify-write commit bumping Utilization on `oid`.
Status CommitUtilization(ClientApi* client, Oid oid, double value) {
  Result<TxnId> begun = client->BeginTxn();
  IDBA_RETURN_NOT_OK(begun.status());
  TxnId t = begun.value();
  Result<DatabaseObject> link = client->Read(t, oid);
  IDBA_RETURN_NOT_OK(link.status());
  DatabaseObject obj = std::move(link).value();
  IDBA_RETURN_NOT_OK(
      obj.SetByName(client->schema(), "Utilization", Value(value)));
  IDBA_RETURN_NOT_OK(client->Write(t, std::move(obj)));
  return client->Commit(t).status();
}

class OverloadTest : public ::testing::Test {
 protected:
  void StartServer(TransportServerOptions transport_opts,
                   DeploymentOptions dep_opts = {}) {
    deployment_ = std::make_unique<Deployment>(dep_opts);
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter(), transport_opts);
    ASSERT_TRUE(transport_->Start().ok());
    ASSERT_NE(transport_->port(), 0);
  }

  void SeedNms() {
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
  }

  std::unique_ptr<RemoteDatabaseClient> Connect(
      ClientId id, RemoteClientOptions opts = {}) {
    auto client =
        RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), id, opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  void TearDown() override {
    transport_.reset();  // stops threads before the deployment dies
    deployment_.reset();
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<TransportServer> transport_;
  NmsDatabase db_;
};

// --- Tentpole claim #1: slow-subscriber isolation -------------------------
//
// A subscriber whose reader is stalled (fault-injected read delay longer
// than every timeout involved) holds a cached copy. The first commit that
// must invalidate that copy pays the bounded callback-ack timeout once;
// the subscriber is then marked stale (forced resync queued) and every
// later commit elides the callback entirely — the stall never propagates
// to other writers.
TEST_F(OverloadTest, StalledSubscriberDoesNotBlockOtherWriters) {
  TransportServerOptions opts;
  opts.callback_ack_timeout_ms = 250;
  StartServer(opts);
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  auto bystander = Connect(102);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(bystander, nullptr);
  Oid first = db_.link_oids[0];
  Oid second = db_.link_oids[1];

  // The viewer registers cached copies of two links, then its reader
  // thread stalls: every read (CALLBACK frames included) is delayed well
  // past the server's callback-ack timeout.
  ASSERT_TRUE(viewer->ReadCurrent(first).ok());
  ASSERT_TRUE(viewer->ReadCurrent(second).ok());
  auto faults = std::make_shared<FaultInjector>();
  viewer->set_fault_injector(faults);
  faults->InjectAll(FaultDirection::kRead, FaultKind::kDelay, 2500);

  // First commit pays the ack timeout (~250 ms) — bounded, not the 2.5 s
  // the subscriber is actually stalled for.
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(CommitUtilization(writer.get(), first, 0.51).ok());
  int64_t first_ms = ElapsedMs(start);
  EXPECT_GE(first_ms, 200) << "commit should have waited for the ack timeout";
  EXPECT_LT(first_ms, 2000) << "commit must not wait out the full stall";
  EXPECT_GE(transport_->callback_ack_timeouts(), 1u);

  // The subscriber now owes a resync: a different writer touching the
  // *other* copy the viewer holds skips the callback wait entirely.
  start = std::chrono::steady_clock::now();
  ASSERT_TRUE(CommitUtilization(bystander.get(), second, 0.52).ok());
  EXPECT_LT(ElapsedMs(start), 1000);
  EXPECT_GE(transport_->callbacks_elided(), 1u);

  // The escalation queued a forced resync for the stalled subscriber.
  EXPECT_TRUE(WaitFor([&] { return transport_->forced_resyncs() >= 1; }));

  // Once the stall clears, the subscriber learns it must resync: its
  // cache drops every (possibly stale) copy and refetches current images.
  faults->Reset();
  EXPECT_TRUE(WaitFor([&] { return viewer->resyncs_received() >= 1; }));
  EXPECT_FALSE(viewer->cache().Contains(second));
  Result<DatabaseObject> fresh = viewer->ReadCurrent(second);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().GetByName(viewer->schema(), "Utilization").value(),
            Value(0.52));
}

// --- Tentpole claim #2: admission control ---------------------------------
//
// With the in-flight cap at 1 and one request parked inside the server (a
// commit waiting on a stalled subscriber's ack), any further request is
// rejected from the reader thread with Status::Overloaded carrying the
// configured retry-after hint — and RunTransaction, floored by that hint,
// rides the rejections out until capacity frees up.
TEST_F(OverloadTest, OverloadedRejectionCarriesRetryAfterHint) {
  TransportServerOptions opts;
  opts.max_inflight = 1;
  opts.callback_ack_timeout_ms = 1500;
  opts.overload_retry_after_ms = 25;
  StartServer(opts);
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  auto victim = Connect(102);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(victim, nullptr);
  Oid held = db_.link_oids[0];
  Oid other = db_.link_oids[1];

  ASSERT_TRUE(viewer->ReadCurrent(held).ok());
  auto faults = std::make_shared<FaultInjector>();
  viewer->set_fault_injector(faults);
  faults->InjectAll(FaultDirection::kRead, FaultKind::kDelay, 2500);

  // Park the writer's commit inside the server: it waits ~1.5 s for the
  // stalled viewer's callback ack, pinning inflight at the cap.
  std::thread committer([&] {
    EXPECT_TRUE(CommitUtilization(writer.get(), held, 0.61).ok());
  });
  std::this_thread::sleep_for(400ms);

  // Direct rejection: status, client-side counter, and the hint.
  Result<TxnId> rejected = victim->BeginTxn();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsOverloaded()) << rejected.status().ToString();
  EXPECT_EQ(victim->retry_after_hint_ms(), 25);
  EXPECT_GE(victim->overload_rejections(), 1u);
  EXPECT_GE(transport_->overload_rejections(), 1u);

  // The retry loop backs off (floored by the hint) and succeeds once the
  // parked commit finishes.
  TxnRetryOptions retry;
  retry.max_attempts = 40;
  retry.backoff = ExponentialBackoffWithJitter(/*seed=*/victim->id(),
                                               /*base_ms=*/20,
                                               /*cap_ms=*/200);
  TxnRetryResult result = RunTransaction(
      victim.get(),
      [&](ClientApi& c, TxnId t) {
        Result<DatabaseObject> link = c.Read(t, other);
        IDBA_RETURN_NOT_OK(link.status());
        DatabaseObject obj = std::move(link).value();
        IDBA_RETURN_NOT_OK(
            obj.SetByName(c.schema(), "Utilization", Value(0.62)));
        return c.Write(t, std::move(obj));
      },
      retry);
  committer.join();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.attempts, 1);

  // The shedding shows up in server introspection (STATS / idba_stat).
  EXPECT_NE(transport_->StatsJson().find("\"overload\""), std::string::npos);
  EXPECT_NE(transport_->StatsText().find("overload"), std::string::npos);

  faults->Reset();
}

// --- Escalation to disconnect (v1 peer cannot be resynced) ----------------
//
// A wire-v1 subscriber (Hello without the trailing version byte) that
// stops draining its connection cannot be sent a RESYNC notification — the
// escalation ladder goes straight to disconnect, and the server keeps
// serving everyone else.
TEST_F(OverloadTest, SlowV1SubscriberIsDisconnected) {
  TransportServerOptions opts;
  opts.callback_ack_timeout_ms = 200;
  StartServer(opts);
  SeedNms();
  Oid oid = db_.link_oids[0];

  // Hand-rolled v1 client: Hello body ends after the consistency byte.
  Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
  ASSERT_TRUE(raw.ok());
  Socket sock = std::move(raw).value();
  std::mutex mu;
  {
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    enc.PutU8(static_cast<uint8_t>(wire::Method::kHello));
    enc.PutI64(0);      // client_now
    enc.PutU64(100);    // client id
    enc.PutU8(0);       // kAvoidance; no version byte -> v1 peer
    ASSERT_TRUE(
        sock.WriteFrame(mu, wire::FrameType::kRequest, 1, payload).ok());
    wire::FrameHeader header;
    std::vector<uint8_t> reply;
    ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());  // schema snapshot
  }
  {
    // Register a cached copy so commits must call back into this client.
    std::vector<uint8_t> payload;
    Encoder enc(&payload);
    enc.PutU8(static_cast<uint8_t>(wire::Method::kFetchCurrent));
    enc.PutI64(0);
    enc.PutU64(oid.value);
    enc.PutU8(1);  // register_copy
    ASSERT_TRUE(
        sock.WriteFrame(mu, wire::FrameType::kRequest, 2, payload).ok());
    wire::FrameHeader header;
    std::vector<uint8_t> reply;
    ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
  }
  // ...and then the client goes silent: it reads nothing and acks nothing.

  auto writer = Connect(101);
  ASSERT_NE(writer, nullptr);
  ASSERT_TRUE(CommitUtilization(writer.get(), oid, 0.71).ok());

  // Ack timeout -> stale; stale v1 peer -> disconnect (no RESYNC possible).
  EXPECT_TRUE(WaitFor([&] { return transport_->slow_disconnects() >= 1; }));

  // The raw socket drains whatever was in flight, then hits EOF.
  bool eof = false;
  for (int i = 0; i < 10 && !eof; ++i) {
    wire::FrameHeader header;
    std::vector<uint8_t> frame;
    eof = !sock.ReadFrame(&header, &frame).ok();
  }
  EXPECT_TRUE(eof);

  // Everyone else is unaffected.
  ASSERT_TRUE(CommitUtilization(writer.get(), oid, 0.72).ok());
}

// --- In-process ladder rung 1: coalescing ---------------------------------
//
// A bounded in-process inbox with an aggressive coalesce watermark merges a
// burst of committed-update notifications into one envelope; one pump, one
// display refresh, final state current — no notification lost, none
// processed redundantly.
TEST(InProcessOverload, BoundedInboxCoalescesBurstIntoOneRefresh) {
  Deployment dep;
  NmsConfig config;
  config.num_nodes = 8;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;
  NmsDatabase db = PopulateNms(&dep.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&dep.display_schema(), dep.server().schema(),
                                db.schema)
          .value();

  DatabaseClientOptions viewer_opts;
  viewer_opts.inbox.max_pending = 8;
  viewer_opts.inbox.coalesce_watermark = 1;
  auto viewer = dep.NewSession(100, viewer_opts);
  auto writer = dep.NewSession(101);

  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = dep.display_schema().Find(dcs.color_coded_link);
  ASSERT_NE(dc, nullptr);
  Oid oid = db.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  // Six commits land while the viewer's pump is not running.
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        CommitUtilization(&writer->client(), oid, i / 10.0).ok());
  }
  Inbox& inbox = viewer->client().inbox();
  EXPECT_EQ(inbox.pending(), 1u);
  EXPECT_GE(inbox.coalesced(), 5u);
  EXPECT_EQ(inbox.overflows(), 0u);

  // One envelope, one refresh, current state.
  EXPECT_EQ(viewer->PumpOnce(), 1);
  EXPECT_EQ(view->refreshes(), 1u);
  auto dobs = view->display_objects();
  ASSERT_EQ(dobs.size(), 1u);
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.6));
}

// --- In-process ladder rung 2: overflow -> forced resync ------------------
//
// Early-notify interleaves intent and update notifications, which do not
// coalesce across kinds; a tiny bound therefore overflows, the backlog is
// shed, and the next pump answers the overflow with a full display resync
// that lands on current state.
TEST(InProcessOverload, InboxOverflowForcesViewResync) {
  DeploymentOptions dep_opts;
  dep_opts.dlm.protocol = NotifyProtocol::kEarlyNotify;
  Deployment dep(dep_opts);
  NmsConfig config;
  config.num_nodes = 8;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;
  NmsDatabase db = PopulateNms(&dep.server(), config).value();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&dep.display_schema(), dep.server().schema(),
                                db.schema)
          .value();

  DatabaseClientOptions viewer_opts;
  viewer_opts.inbox.max_pending = 2;
  auto viewer = dep.NewSession(100, viewer_opts);
  auto writer = dep.NewSession(101);

  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc = dep.display_schema().Find(dcs.color_coded_link);
  ASSERT_NE(dc, nullptr);
  Oid oid = db.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  // Each commit delivers intent + update; the second commit's intent finds
  // the queue full behind a non-coalescible pair and trips the overflow.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        CommitUtilization(&writer->client(), oid, i / 10.0).ok());
  }
  Inbox& inbox = viewer->client().inbox();
  EXPECT_GE(inbox.overflows(), 1u);
  EXPECT_GE(inbox.shed(), 3u);

  // The pump acknowledges the overflow with a full resync.
  viewer->PumpOnce();
  EXPECT_GE(viewer->dlc().resyncs(), 1u);
  EXPECT_GE(view->resyncs(), 1u);
  auto dobs = view->display_objects();
  ASSERT_EQ(dobs.size(), 1u);
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.3));
}

// --- Regression: the whole coalesce -> resync ladder under strict audit ---
//
// Both shedding rungs run with the consistency auditor in strict mode: the
// coalesce rung must hand the display a max-merged commit vtime (never an
// older one), and the overflow -> forced-resync rung must keep per-OID
// vtimes monotonic across the shed (OnResync drops obligations but KEEPS
// watermarks). Any regression aborts the process via the strict auditor;
// the explicit counter checks make the pass visible, not just survived.
TEST(InProcessOverload, CoalesceResyncLadderIsMonotoneUnderStrictAudit) {
  obs::ConsistencyAuditor& auditor = obs::GlobalAuditor();
  auditor.ResetForTest();
  auditor.set_staleness_slo_us(100 * kVMillisecond);
  auditor.SetMode(obs::AuditMode::kStrict);

  NmsConfig config;
  config.num_nodes = 8;
  config.sites = 1;
  config.buildings_per_site = 1;
  config.racks_per_building = 1;
  config.devices_per_rack = 1;

  // Rung 1: aggressive coalescing. Six commits merge into one envelope;
  // the dispatched vtime must be the max (a min- or first-merge would trip
  // the watermark the eager per-commit OnNotifySent hooks already set).
  {
    Deployment dep;
    NmsDatabase db = PopulateNms(&dep.server(), config).value();
    NmsDisplayClasses dcs =
        RegisterNmsDisplayClasses(&dep.display_schema(), dep.server().schema(),
                                  db.schema)
            .value();
    DatabaseClientOptions viewer_opts;
    viewer_opts.inbox.max_pending = 8;
    viewer_opts.inbox.coalesce_watermark = 1;
    auto viewer = dep.NewSession(100, viewer_opts);
    auto writer = dep.NewSession(101);
    ActiveView* view = viewer->CreateView("links");
    const DisplayClassDef* dc = dep.display_schema().Find(dcs.color_coded_link);
    ASSERT_NE(dc, nullptr);
    Oid oid = db.link_oids[0];
    ASSERT_TRUE(view->Materialize(dc, {oid}).ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(CommitUtilization(&writer->client(), oid, i / 10.0).ok());
    }
    EXPECT_GE(viewer->client().inbox().coalesced(), 5u);
    EXPECT_EQ(viewer->PumpOnce(), 1);
    EXPECT_EQ(view->refreshes(), 1u);
  }

  // The fresh Deployment below is a new server universe with fresh
  // (lower) virtual clocks — the same situation as reconnecting to a
  // restarted server — so apply the reconnect semantics: forget both
  // subscribers. Without this the rung-1 sent watermark would trip a
  // false monotonicity violation on rung 2's first commit.
  auditor.OnSessionReset(100);
  auditor.OnSessionReset(101);

  // Rung 2: overflow -> shed -> forced resync (early notify interleaves
  // non-coalescible kinds). The resync's full refetch must still observe
  // vtimes/versions at or above everything the subscriber already saw.
  {
    DeploymentOptions dep_opts;
    dep_opts.dlm.protocol = NotifyProtocol::kEarlyNotify;
    Deployment dep(dep_opts);
    NmsDatabase db = PopulateNms(&dep.server(), config).value();
    NmsDisplayClasses dcs =
        RegisterNmsDisplayClasses(&dep.display_schema(), dep.server().schema(),
                                  db.schema)
            .value();
    DatabaseClientOptions viewer_opts;
    viewer_opts.inbox.max_pending = 2;
    auto viewer = dep.NewSession(100, viewer_opts);
    auto writer = dep.NewSession(101);
    ActiveView* view = viewer->CreateView("links");
    const DisplayClassDef* dc = dep.display_schema().Find(dcs.color_coded_link);
    ASSERT_NE(dc, nullptr);
    Oid oid = db.link_oids[0];
    ASSERT_TRUE(view->Materialize(dc, {oid}).ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(CommitUtilization(&writer->client(), oid, i / 10.0).ok());
    }
    EXPECT_GE(viewer->client().inbox().overflows(), 1u);
    viewer->PumpOnce();
    EXPECT_GE(view->resyncs(), 1u);
    // A second pump cycle after the resync: later commits must dispatch
    // cleanly against the watermarks the pre-shed stream established.
    for (int i = 4; i <= 5; ++i) {
      ASSERT_TRUE(CommitUtilization(&writer->client(), oid, i / 10.0).ok());
      viewer->PumpOnce();
    }
  }

  EXPECT_GT(auditor.checks_total(), 0u);
  EXPECT_EQ(auditor.violations_total(), 0u);
  EXPECT_EQ(auditor.pending_obligations(), 0u);
  auditor.ResetForTest();
}

// --- Escalation hook wiring (the transport's disconnect threshold) --------
//
// Repeated overflows escalate through the overflow hook exactly the way
// TransportServer wires it: the hook sees the cumulative overflow count and
// trips the disconnect decision once the threshold is reached.
TEST(InProcessOverload, OverflowHookEscalatesAtThreshold) {
  int disconnect_after = 2;
  bool disconnected = false;
  InboxOptions opts;
  opts.max_pending = 1;
  opts.overflow_hook = [&](uint64_t overflow_count) {
    if (overflow_count >= static_cast<uint64_t>(disconnect_after)) {
      disconnected = true;
    }
  };
  Inbox inbox(opts);

  auto intent = std::make_shared<IntentNotifyMessage>();
  intent->oids.push_back(Oid(7));
  auto update = std::make_shared<UpdateNotifyMessage>();
  update->updated.push_back(Oid(7));

  auto deliver = [&](std::shared_ptr<const Message> msg) {
    Envelope e;
    e.from = 1;
    e.to = 2;
    e.msg = std::move(msg);
    return inbox.Deliver(std::move(e));
  };

  // Round one: intent queued, update cannot coalesce into it -> overflow.
  EXPECT_EQ(deliver(intent), DeliverOutcome::kQueued);
  EXPECT_EQ(deliver(update), DeliverOutcome::kOverflow);
  EXPECT_FALSE(disconnected);  // first overflow is below the threshold
  EXPECT_TRUE(inbox.TakeOverflow());

  // Round two: same pattern; the hook now sees count == 2 and escalates.
  EXPECT_EQ(deliver(intent), DeliverOutcome::kQueued);
  EXPECT_EQ(deliver(update), DeliverOutcome::kOverflow);
  EXPECT_TRUE(disconnected);
  EXPECT_EQ(inbox.overflows(), 2u);
}

}  // namespace
}  // namespace idba
