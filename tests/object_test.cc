#include "objectmodel/object.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

class ObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    link_ = catalog_.DefineClass("Link").value();
    ASSERT_TRUE(catalog_.AddAttribute(link_, "Name", ValueType::kString).ok());
    ASSERT_TRUE(
        catalog_.AddAttribute(link_, "Utilization", ValueType::kDouble, Value(0.0))
            .ok());
    ASSERT_TRUE(catalog_.AddAttribute(link_, "From", ValueType::kOid).ok());
  }

  DatabaseObject MakeLink(uint64_t oid) {
    DatabaseObject obj(Oid(oid), link_, 3);
    obj.Set(0, Value("link-1"));
    obj.Set(1, Value(0.7));
    obj.Set(2, Value(Oid(100)));
    return obj;
  }

  SchemaCatalog catalog_;
  ClassId link_;
};

TEST_F(ObjectTest, NamedAccess) {
  DatabaseObject obj = MakeLink(1);
  EXPECT_EQ(obj.GetByName(catalog_, "Name").value(), Value("link-1"));
  EXPECT_EQ(obj.GetByName(catalog_, "Utilization").value(), Value(0.7));
  EXPECT_EQ(obj.GetByName(catalog_, "Bogus").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(obj.SetByName(catalog_, "Utilization", Value(0.9)).ok());
  EXPECT_EQ(obj.Get(1), Value(0.9));
  EXPECT_EQ(obj.SetByName(catalog_, "Bogus", Value(1)).code(),
            StatusCode::kNotFound);
}

TEST_F(ObjectTest, VersionBumps) {
  DatabaseObject obj = MakeLink(1);
  EXPECT_EQ(obj.version(), 0u);
  obj.BumpVersion();
  EXPECT_EQ(obj.version(), 1u);
  obj.set_version(41);
  obj.BumpVersion();
  EXPECT_EQ(obj.version(), 42u);
}

TEST_F(ObjectTest, EncodeDecodeRoundTrip) {
  DatabaseObject obj = MakeLink(7);
  obj.set_version(3);
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  obj.EncodeTo(&enc);
  Decoder dec(buf);
  DatabaseObject out;
  ASSERT_TRUE(DatabaseObject::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out, obj);
  EXPECT_EQ(out.oid(), Oid(7));
  EXPECT_EQ(out.version(), 3u);
  EXPECT_EQ(out.class_id(), link_);
  EXPECT_TRUE(dec.exhausted());
}

TEST_F(ObjectTest, WireBytesBoundsEncodedSize) {
  DatabaseObject obj = MakeLink(7);
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  obj.EncodeTo(&enc);
  EXPECT_GE(obj.WireBytes(), buf.size());
  EXPECT_LE(obj.WireBytes(), buf.size() + 32);
}

TEST_F(ObjectTest, MemoryBytesTracksStringGrowth) {
  DatabaseObject small = MakeLink(1);
  DatabaseObject big = MakeLink(2);
  big.Set(0, Value(std::string(5000, 'n')));
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes() + 4000);
}

TEST_F(ObjectTest, ToStringNamesAttributes) {
  DatabaseObject obj = MakeLink(7);
  std::string s = obj.ToString(catalog_);
  EXPECT_NE(s.find("Link"), std::string::npos);
  EXPECT_NE(s.find("Utilization=0.7"), std::string::npos);
  EXPECT_NE(s.find("oid:7"), std::string::npos);
}

TEST_F(ObjectTest, DecodeCorruptionDetected) {
  std::vector<uint8_t> buf = {1, 2, 3};
  Decoder dec(buf);
  DatabaseObject out;
  EXPECT_EQ(DatabaseObject::DecodeFrom(&dec, &out).code(),
            StatusCode::kCorruption);
}

TEST(OidTest, HashAndCompare) {
  EXPECT_TRUE(kNullOid.IsNull());
  EXPECT_FALSE(Oid(1).IsNull());
  EXPECT_LT(Oid(1), Oid(2));
  EXPECT_EQ(Oid(5).ToString(), "oid:5");
  std::hash<Oid> h;
  EXPECT_NE(h(Oid(1)), h(Oid(2)));
}

}  // namespace
}  // namespace idba
