#!/bin/sh
# Smoke test: idba_top against a live idba_serve.
#
#   idba_top_smoke.sh <idba_serve> <idba_top>
#
# Starts the server on an ephemeral port, renders one --once frame (totals)
# and one two-frame --count run (deltas), and checks every dashboard
# section is present. The METRICS scrapes idba_top issues are themselves
# RPCs, so the second frame always has at least the Metrics opcode active.
set -eu

SERVE="$1"
TOP="$2"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

"$SERVE" --port 0 >"$WORKDIR/serve.out" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9][0-9]*\).*/\1/p' \
         "$WORKDIR/serve.out" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORKDIR/serve.out"; \
    echo "FAIL: idba_serve exited early"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "FAIL: could not find bound port"; exit 1; }

"$TOP" --connect "127.0.0.1:$PORT" --once >"$WORKDIR/once.txt"
for section in RPC TRANSPORT LOOPS CACHE LOCKS OVERLOAD; do
  grep -q "$section" "$WORKDIR/once.txt" || {
    echo "FAIL: --once frame missing '$section' section:"
    cat "$WORKDIR/once.txt"
    exit 1
  }
done
grep -q 'since boot' "$WORKDIR/once.txt" || {
  echo "FAIL: --once frame is not a totals frame"; exit 1; }
grep -q 'io-0' "$WORKDIR/once.txt" || {
  echo "FAIL: LOOPS pane has no per-loop row:"; cat "$WORKDIR/once.txt"
  exit 1
}

# Two frames, 1 s apart: the second is windowed and must show the Metrics
# RPC issued by the first frame's own scrape (live deltas, acceptance item).
"$TOP" --connect "127.0.0.1:$PORT" --interval 1 --count 2 >"$WORKDIR/live.txt"
grep -q 'window 1s' "$WORKDIR/live.txt" || {
  echo "FAIL: second frame is not windowed:"; cat "$WORKDIR/live.txt"; exit 1; }
grep -q 'Metrics' "$WORKDIR/live.txt" || {
  echo "FAIL: windowed frame shows no Metrics RPC activity:"
  cat "$WORKDIR/live.txt"
  exit 1
}

echo "PASS"
