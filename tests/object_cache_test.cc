#include "client/object_cache.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

DatabaseObject MakeObj(uint64_t oid, size_t payload_bytes) {
  DatabaseObject obj(Oid(oid), 1, 1);
  obj.Set(0, Value(std::string(payload_bytes, 'c')));
  return obj;
}

TEST(ObjectCacheTest, PutGetRoundTrip) {
  ObjectCache cache;
  cache.Put(MakeObj(1, 10));
  auto got = cache.Get(Oid(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->oid(), Oid(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.Get(Oid(2)).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ObjectCacheTest, PutOverwritesAndReaccounts) {
  ObjectCache cache;
  cache.Put(MakeObj(1, 10));
  size_t small = cache.bytes_used();
  cache.Put(MakeObj(1, 1000));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_GT(cache.bytes_used(), small);
}

TEST(ObjectCacheTest, LruEvictionByBytes) {
  ObjectCache cache(ObjectCacheOptions{.capacity_bytes = 2000});
  std::vector<Oid> evicted;
  cache.set_eviction_callback([&](Oid oid) { evicted.push_back(oid); });
  cache.Put(MakeObj(1, 800));
  cache.Put(MakeObj(2, 800));
  cache.Put(MakeObj(3, 800));  // over budget: 1 is LRU
  EXPECT_FALSE(cache.Contains(Oid(1)));
  EXPECT_TRUE(cache.Contains(Oid(2)));
  EXPECT_TRUE(cache.Contains(Oid(3)));
  EXPECT_EQ(evicted, std::vector<Oid>{Oid(1)});
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(ObjectCacheTest, GetRefreshesLruPosition) {
  ObjectCache cache(ObjectCacheOptions{.capacity_bytes = 2000});
  cache.Put(MakeObj(1, 800));
  cache.Put(MakeObj(2, 800));
  ASSERT_TRUE(cache.Get(Oid(1)).has_value());  // 1 becomes MRU
  cache.Put(MakeObj(3, 800));                  // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(Oid(1)));
  EXPECT_FALSE(cache.Contains(Oid(2)));
}

TEST(ObjectCacheTest, InvalidateRemovesCopy) {
  ObjectCache cache;
  cache.Put(MakeObj(1, 10));
  cache.InvalidateCached(Oid(1), 7);
  EXPECT_FALSE(cache.Contains(Oid(1)));
  EXPECT_EQ(cache.invalidations(), 1u);
  // Invalidating a non-cached object is a no-op.
  cache.InvalidateCached(Oid(99), 1);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(ObjectCacheTest, DropAndClear) {
  ObjectCache cache;
  cache.Put(MakeObj(1, 10));
  cache.Put(MakeObj(2, 10));
  cache.Drop(Oid(1));
  EXPECT_FALSE(cache.Contains(Oid(1)));
  EXPECT_EQ(cache.invalidations(), 0u);  // Drop is not a protocol event
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ObjectCacheTest, BytesAccountingConsistent) {
  ObjectCache cache;
  cache.Put(MakeObj(1, 100));
  cache.Put(MakeObj(2, 200));
  size_t before = cache.bytes_used();
  cache.Drop(Oid(1));
  EXPECT_LT(cache.bytes_used(), before);
  cache.Drop(Oid(2));
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ObjectCacheTest, NeverEvictsTheOnlyEntry) {
  // Even an oversized single object stays (eviction keeps >= 1 entry so a
  // fetched object can always be used).
  ObjectCache cache(ObjectCacheOptions{.capacity_bytes = 100});
  cache.Put(MakeObj(1, 5000));
  EXPECT_TRUE(cache.Contains(Oid(1)));
}

}  // namespace
}  // namespace idba
