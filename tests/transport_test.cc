// End-to-end tests of the TCP transport: a TransportServer on an ephemeral
// loopback port, RemoteDatabaseClients speaking the wire protocol, and the
// display layer (DLC + ActiveView) running unchanged on top of them.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/session.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

/// Spins (real time) until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

class TransportTest : public ::testing::Test {
 protected:
  void StartServer(DeploymentOptions opts = {}) {
    deployment_ = std::make_unique<Deployment>(opts);
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter());
    ASSERT_TRUE(transport_->Start().ok());
    ASSERT_NE(transport_->port(), 0);
  }

  void SeedNms() {
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
  }

  std::unique_ptr<RemoteDatabaseClient> Connect(
      ClientId id, RemoteClientOptions opts = {}) {
    auto client =
        RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), id, opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  void TearDown() override {
    transport_.reset();  // stops threads before the deployment dies
    deployment_.reset();
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<TransportServer> transport_;
  NmsDatabase db_;
};

TEST_F(TransportTest, HelloSnapshotsServerSchema) {
  StartServer();
  SeedNms();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  // The schema defined server-side (by PopulateNms) arrived with Hello.
  const ClassDef* link = client->schema().Find(db_.schema.link);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->name(), "Link");
}

TEST_F(TransportTest, RemoteDdlReplaysLocally) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  Result<ClassId> cls = client->DefineClass("Widget");
  ASSERT_TRUE(cls.ok()) << cls.status().ToString();
  ASSERT_TRUE(
      client->AddAttribute(cls.value(), "Weight", ValueType::kDouble).ok());
  // Both catalogs agree: local copy resolves the attribute, and a second
  // client's Hello snapshot sees the class defined through the first.
  EXPECT_NE(client->schema().Find(cls.value()), nullptr);
  auto second = Connect(101);
  ASSERT_NE(second, nullptr);
  ASSERT_NE(second->schema().Find(cls.value()), nullptr);
  EXPECT_EQ(second->schema().Find(cls.value())->name(), "Widget");
}

TEST_F(TransportTest, CrudRoundTripsAcrossClients) {
  StartServer();
  auto writer = Connect(100);
  ASSERT_NE(writer, nullptr);

  ClassId cls = writer->DefineClass("Item").value();
  ASSERT_TRUE(writer->AddAttribute(cls, "Count", ValueType::kInt).ok());

  // Connect after the DDL: a client's schema snapshot is taken at Hello
  // (setup phase precedes connections, like any client-server DBMS here).
  auto reader = Connect(101);
  ASSERT_NE(reader, nullptr);

  Oid oid = writer->AllocateOid();
  ASSERT_FALSE(oid.IsNull());
  TxnId t = writer->Begin();
  DatabaseObject obj = NewObject(writer->schema(), cls, oid);
  ASSERT_TRUE(
      obj.SetByName(writer->schema(), "Count", Value(int64_t{7})).ok());
  ASSERT_TRUE(writer->Insert(t, obj).ok());
  ASSERT_TRUE(writer->Commit(t).ok());

  // The other client — other cache, same wire — sees the committed image.
  Result<DatabaseObject> got = reader->ReadCurrent(oid);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().GetByName(reader->schema(), "Count").value(),
            Value(int64_t{7}));
  EXPECT_EQ(reader->LatestVersion(oid).value(), got.value().version());

  // Erase propagates too.
  TxnId t2 = writer->Begin();
  ASSERT_TRUE(writer->EraseObject(t2, oid).ok());
  ASSERT_TRUE(writer->Commit(t2).ok());
  EXPECT_TRUE(reader->LatestVersion(oid).status().IsNotFound());
}

TEST_F(TransportTest, CommitInvalidatesRemoteCachedCopies) {
  StartServer();
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  Oid oid = db_.link_oids[0];

  // Both cache the link (avoidance mode registers the copies server-side).
  ASSERT_TRUE(viewer->ReadCurrent(oid).ok());
  ASSERT_TRUE(writer->ReadCurrent(oid).ok());
  ASSERT_TRUE(viewer->cache().Contains(oid));

  // Writer commits an update. The CALLBACK -> CALLBACK_ACK exchange with
  // the viewer completes *before* the commit returns, so the viewer's
  // cache is guaranteed clean of the stale copy here — no waiting.
  TxnId t = writer->Begin();
  DatabaseObject link = writer->Read(t, oid).value();
  ASSERT_TRUE(
      link.SetByName(writer->schema(), "Utilization", Value(0.93)).ok());
  ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->Commit(t).ok());

  EXPECT_FALSE(viewer->cache().Contains(oid));
  EXPECT_GE(viewer->callbacks_served(), 1u);
  Result<DatabaseObject> fresh = viewer->ReadCurrent(oid);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().GetByName(viewer->schema(), "Utilization").value(),
            Value(0.93));
}

TEST_F(TransportTest, DisplayLockNotificationCrossesTheWire) {
  StartServer();
  SeedNms();
  auto viewer = Connect(100);
  auto writer = Connect(101);
  ASSERT_NE(viewer, nullptr);
  ASSERT_NE(writer, nullptr);
  Oid oid = db_.link_oids[0];

  // Viewer registers a display lock with the server-hosted DLM.
  ASSERT_TRUE(viewer->Lock(viewer->id(), oid, viewer->clock().Now()).ok());

  // Writer commits; the DLM notifies the holder; the notification frame
  // arrives asynchronously in the viewer's inbox.
  TxnId t = writer->Begin();
  DatabaseObject link = writer->Read(t, oid).value();
  ASSERT_TRUE(
      link.SetByName(writer->schema(), "Utilization", Value(0.42)).ok());
  ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->Commit(t).ok());

  ASSERT_TRUE(WaitFor([&] { return viewer->inbox().pending() > 0; }));
  auto env = viewer->inbox().Poll();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->to, static_cast<EndpointId>(viewer->id()));
  auto* update = dynamic_cast<const UpdateNotifyMessage*>(env->msg.get());
  ASSERT_NE(update, nullptr);
  ASSERT_EQ(update->updated.size(), 1u);
  EXPECT_EQ(update->updated[0], oid);
  EXPECT_TRUE(update->committed);

  // Non-holders stay quiet.
  EXPECT_EQ(writer->notifications_received(), 0u);
}

TEST_F(TransportTest, ActiveViewRefreshesOverRemoteBackend) {
  StartServer();
  SeedNms();
  NmsDisplayClasses dcs =
      RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                deployment_->server().schema(), db_.schema)
          .value();

  auto remote = Connect(100);
  ASSERT_NE(remote, nullptr);
  RemoteDatabaseClient* raw = remote.get();
  // Backend-agnostic session: the remote client is both the ClientApi and
  // the DisplayLockService; notifications flow through its own inbox.
  InteractiveSession session(std::move(remote), raw, /*bus=*/nullptr);

  auto writer = Connect(101);
  ASSERT_NE(writer, nullptr);

  ActiveView* view = session.CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs.color_coded_link);
  ASSERT_NE(dc, nullptr);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  TxnId t = writer->Begin();
  DatabaseObject link = writer->Read(t, oid).value();
  ASSERT_TRUE(
      link.SetByName(writer->schema(), "Utilization", Value(0.95)).ok());
  ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->Commit(t).ok());

  ASSERT_TRUE(WaitFor([&] { return session.client().inbox().pending() > 0; }));
  EXPECT_EQ(session.PumpOnce(), 1);
  EXPECT_EQ(view->refreshes(), 1u);
  auto dobs = view->display_objects();
  ASSERT_EQ(dobs.size(), 1u);
  EXPECT_EQ(dobs[0]->Get("Utilization").value(), Value(0.95));
  EXPECT_EQ(dobs[0]->Get("Color").value(), Value("red"));
}

/// The representative workload of the parity test: bulk display read, a few
/// update transactions, an abort, a scan. Identical call sequence against
/// either backend.
void RunWorkload(ClientApi* client, const NmsDatabase& db) {
  const SchemaCatalog& cat = client->schema();
  for (Oid oid : db.link_oids) {
    ASSERT_TRUE(client->ReadCurrent(oid).ok());
  }
  for (int i = 0; i < 3; ++i) {
    Oid oid = db.link_oids[i % db.link_oids.size()];
    TxnId t = client->Begin();
    DatabaseObject link = client->Read(t, oid).value();
    ASSERT_TRUE(
        link.SetByName(cat, "Utilization", Value(0.2 * (i + 1))).ok());
    ASSERT_TRUE(client->Write(t, std::move(link)).ok());
    ASSERT_TRUE(client->Commit(t).ok());
  }
  TxnId t = client->Begin();
  ASSERT_TRUE(client->Read(t, db.link_oids[0]).ok());
  ASSERT_TRUE(client->Abort(t).ok());
  auto scanned = client->ScanClass(db.schema.link);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned.value().size(), db.link_oids.size());
}

/// Final object states visible through a client: (version, utilization).
std::vector<std::pair<uint64_t, Value>> Fingerprint(ClientApi* client,
                                                    const NmsDatabase& db) {
  std::vector<std::pair<uint64_t, Value>> out;
  for (Oid oid : db.link_oids) {
    DatabaseObject obj = client->ReadCurrent(oid).value();
    out.emplace_back(obj.version(),
                     obj.GetByName(client->schema(), "Utilization").value());
  }
  return out;
}

TEST_F(TransportTest, WorkloadParityWithInProcessBackend) {
  // Remote run.
  StartServer();
  SeedNms();
  auto remote = Connect(100);
  ASSERT_NE(remote, nullptr);
  RunWorkload(remote.get(), db_);
  auto remote_fp = Fingerprint(remote.get(), db_);
  uint64_t remote_rpcs = remote->rpcs_issued();
  uint64_t remote_commits = deployment_->server().commits();

  // In-process run: fresh deployment, same seed, same call sequence.
  Deployment local_dep;
  NmsDatabase local_db = PopulateNms(&local_dep.server(), db_.config).value();
  auto session = local_dep.NewSession(100);
  RunWorkload(&session->client(), local_db);
  auto local_fp = Fingerprint(&session->client(), local_db);

  EXPECT_EQ(remote_fp, local_fp);
  EXPECT_EQ(remote_rpcs, session->client().rpcs_issued());
  EXPECT_EQ(remote_commits, local_dep.server().commits());
}

TEST_F(TransportTest, DuplicateClientIdRejected) {
  StartServer();
  auto first = Connect(100);
  ASSERT_NE(first, nullptr);
  auto second = RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(),
                                              /*id=*/100);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists)
      << second.status().ToString();
  // The id frees up once the first client disconnects.
  first.reset();
  ASSERT_TRUE(WaitFor([&] {
    return RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), 100)
        .ok();
  }));
}

TEST_F(TransportTest, RequestBeforeHelloIsRejected) {
  StartServer();
  Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
  ASSERT_TRUE(raw.ok());
  Socket sock = std::move(raw).value();
  std::mutex mu;
  std::vector<uint8_t> payload;
  Encoder enc(&payload);
  enc.PutU8(static_cast<uint8_t>(wire::Method::kBegin));
  enc.PutI64(0);
  ASSERT_TRUE(
      sock.WriteFrame(mu, wire::FrameType::kRequest, 1, payload).ok());
  wire::FrameHeader header;
  std::vector<uint8_t> reply;
  ASSERT_TRUE(sock.ReadFrame(&header, &reply).ok());
  EXPECT_EQ(header.type, wire::FrameType::kResponse);
  Decoder dec(reply.data(), reply.size());
  Status remote;
  ASSERT_TRUE(wire::DecodeStatus(&dec, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument) << remote.ToString();
}

TEST_F(TransportTest, MalformedFrameDropsConnection) {
  StartServer();
  Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
  ASSERT_TRUE(raw.ok());
  Socket sock = std::move(raw).value();
  // Frame type 99 does not exist; the server must drop the connection
  // rather than wedge or crash.
  uint8_t junk[wire::kHeaderBytes] = {};
  junk[4] = 99;
  ASSERT_TRUE(sock.SendAll(junk, sizeof(junk)).ok());
  wire::FrameHeader header;
  std::vector<uint8_t> reply;
  EXPECT_FALSE(sock.ReadFrame(&header, &reply).ok());  // EOF: disconnected

  // And the server keeps serving well-formed clients afterwards.
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->Begin() == 0);
}

TEST_F(TransportTest, OversizedPayloadDropsConnection) {
  StartServer();
  Result<Socket> raw = Socket::ConnectTo("127.0.0.1", transport_->port());
  ASSERT_TRUE(raw.ok());
  Socket sock = std::move(raw).value();
  wire::FrameHeader header;
  header.payload_len = wire::kMaxPayloadBytes + 1;
  header.type = wire::FrameType::kRequest;
  header.seq = 1;
  uint8_t out[wire::kHeaderBytes];
  wire::EncodeHeader(header, out);
  ASSERT_TRUE(sock.SendAll(out, sizeof(out)).ok());
  std::vector<uint8_t> reply;
  EXPECT_FALSE(sock.ReadFrame(&header, &reply).ok());
}

TEST_F(TransportTest, DetectionModeValidatesOverTheWire) {
  StartServer();
  SeedNms();
  RemoteClientOptions detection;
  detection.consistency = ConsistencyMode::kDetection;
  auto optimist = Connect(100, detection);
  auto writer = Connect(101);
  ASSERT_NE(optimist, nullptr);
  ASSERT_NE(writer, nullptr);
  Oid oid = db_.link_oids[0];

  // Optimist reads (stale copy allowed, untracked by the server)...
  TxnId t = optimist->Begin();
  DatabaseObject stale = optimist->Read(t, oid).value();

  // ...a writer slips in a commit...
  TxnId wt = writer->Begin();
  DatabaseObject link = writer->Read(wt, oid).value();
  ASSERT_TRUE(
      link.SetByName(writer->schema(), "Utilization", Value(0.77)).ok());
  ASSERT_TRUE(writer->Write(wt, std::move(link)).ok());
  ASSERT_TRUE(writer->Commit(wt).ok());

  // ...so the optimist's commit-time validation must abort.
  ASSERT_TRUE(
      stale.SetByName(optimist->schema(), "Utilization", Value(0.11)).ok());
  ASSERT_TRUE(optimist->Write(t, std::move(stale)).ok());
  Status st = optimist->Commit(t).status();
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(optimist->validation_aborts(), 1u);
  // The retry sees the current image and succeeds.
  TxnId t2 = optimist->Begin();
  DatabaseObject fresh = optimist->Read(t2, oid).value();
  EXPECT_EQ(fresh.GetByName(optimist->schema(), "Utilization").value(),
            Value(0.77));
  ASSERT_TRUE(
      fresh.SetByName(optimist->schema(), "Utilization", Value(0.11)).ok());
  ASSERT_TRUE(optimist->Write(t2, std::move(fresh)).ok());
  EXPECT_TRUE(optimist->Commit(t2).ok());
}

TEST_F(TransportTest, ConcurrentCommittersDoNotDeadlock) {
  StartServer();
  SeedNms();
  auto a = Connect(100);
  auto b = Connect(101);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  Oid oid_a = db_.link_oids[0];
  Oid oid_b = db_.link_oids[1];
  // Cross-cache: each client caches the object the *other* one updates, so
  // every commit must call back into the opposite client while that client
  // may itself be blocked committing.
  ASSERT_TRUE(a->ReadCurrent(oid_b).ok());
  ASSERT_TRUE(b->ReadCurrent(oid_a).ok());

  auto updater = [](ClientApi* client, Oid oid, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      TxnId t = client->Begin();
      Result<DatabaseObject> obj = client->Read(t, oid);
      if (!obj.ok()) {
        (void)client->Abort(t);
        continue;
      }
      DatabaseObject link = std::move(obj).value();
      ASSERT_TRUE(link.SetByName(client->schema(), "Utilization",
                                 Value(0.01 * (i + 1)))
                      .ok());
      ASSERT_TRUE(client->Write(t, std::move(link)).ok());
      Status st = client->Commit(t).status();
      ASSERT_TRUE(st.ok() || st.IsDeadlock() || st.IsAborted())
          << st.ToString();
    }
  };
  std::thread ta([&] { updater(a.get(), oid_a, 20); });
  std::thread tb([&] { updater(b.get(), oid_b, 20); });
  ta.join();
  tb.join();
  EXPECT_GE(deployment_->server().commits(), 2u);
}

}  // namespace
}  // namespace idba
