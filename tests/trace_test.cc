// End-to-end tests of the observability layer: trace context propagation
// across the TCP transport (including reconnect + injected faults), the
// lock-striped span ring buffer, Chrome trace / JSONL export
// well-formedness, and the display.staleness_vtime telemetry on a scripted
// two-client notify scenario.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "net/fault_injector.h"
#include "net/remote_client.h"
#include "net/tcp_server.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "obs/trace.h"

namespace idba {
namespace {

using namespace std::chrono_literals;

// --- Minimal JSON well-formedness checker ----------------------------------
// Strict enough for export validation: balanced structure, legal strings
// (escapes, no raw control characters), legal numbers, true/false/null.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool Number() {
    size_t digits_at = pos_ + (Peek() == '-' ? 1 : 0);
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (pos_ == digits_at) return false;  // "-" alone, or not a number
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return true;
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Spins (real time) until `pred` holds or ~5 s elapse.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

std::vector<obs::SpanRecord> SpansNamed(
    const std::vector<obs::SpanRecord>& spans, const std::string& name) {
  std::vector<obs::SpanRecord> out;
  for (const auto& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

// --- Recorder unit tests ----------------------------------------------------

TEST(TraceRecorderTest, RingWrapsOverwritingOldestAndCountsDrops) {
  obs::TraceRecorder rec(/*capacity=*/64);
  const int kTotal = 1000;
  for (int i = 0; i < kTotal; ++i) {
    obs::SpanRecord s;
    s.trace_id = 1;
    s.span_id = static_cast<uint64_t>(i + 1);
    s.start_us = i;
    s.dur_us = 1;
    s.name = "filler";
    rec.Record(std::move(s));
  }
  auto spans = rec.Snapshot();
  EXPECT_LE(spans.size(), rec.capacity());
  EXPECT_GT(spans.size(), 0u);
  EXPECT_EQ(rec.dropped(), static_cast<uint64_t>(kTotal) - spans.size());
  // Ring semantics: the survivors are the newest records, in start order.
  EXPECT_TRUE(std::is_sorted(spans.begin(), spans.end(),
                             [](const obs::SpanRecord& a,
                                const obs::SpanRecord& b) {
                               return a.start_us < b.start_us;
                             }));
  // All writes happened on one thread -> one stripe -> exact per-stripe cap.
  EXPECT_GE(spans.back().start_us, kTotal - 1 - static_cast<int>(rec.capacity()));

  rec.Clear();
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(TraceRecorderTest, ConcurrentRecordingKeepsEveryStripeConsistent) {
  obs::TraceRecorder rec(/*capacity=*/4096);
  const int kThreads = 8, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::SpanRecord s;
        s.trace_id = static_cast<uint64_t>(t + 1);
        s.span_id = static_cast<uint64_t>(i + 1);
        s.start_us = obs::NowUs();
        s.name = "worker";
        rec.Record(std::move(s));
      }
    });
  }
  for (auto& th : threads) th.join();
  auto spans = rec.Snapshot();
  EXPECT_EQ(spans.size() + rec.dropped(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(TraceRecorderTest, ExportsAreWellFormedWithHostileNames) {
  obs::TraceRecorder rec(/*capacity=*/64);
  obs::SpanRecord s;
  s.trace_id = 0xdeadbeef;
  s.span_id = 42;
  s.parent_id = 41;
  s.start_us = 10;
  s.dur_us = 5;
  s.name = "evil \"name\" with \\ and \n newline \t tab";
  s.note = std::string("nul\0byte", 8);  // embedded NUL must not break JSON
  rec.Record(std::move(s));
  obs::SpanRecord plain;
  plain.trace_id = 7;
  plain.span_id = 1;
  plain.name = "server.execute";
  plain.note = "Commit";
  rec.Record(std::move(plain));

  std::string chrome = rec.DumpChromeTrace();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u) << chrome;
  EXPECT_TRUE(JsonChecker(chrome).Valid()) << chrome;
  EXPECT_NE(chrome.find("server.execute"), std::string::npos);

  std::string jsonl = rec.DumpJsonl();
  size_t lines = 0;
  size_t at = 0;
  while (at < jsonl.size()) {
    size_t nl = jsonl.find('\n', at);
    if (nl == std::string::npos) nl = jsonl.size();
    std::string line = jsonl.substr(at, nl - at);
    if (!line.empty()) {
      ++lines;
      EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    }
    at = nl + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(TraceSpanTest, InactiveWithoutSamplingAndNestedWhenForced) {
  obs::SetTraceSampling(false);
  {
    obs::Span off = obs::Span::StartRoot("should.not.record");
    EXPECT_FALSE(off.active());
    obs::Span child = obs::Span::Start("child.of.nothing");
    EXPECT_FALSE(child.active());
  }

  obs::TraceRecorder& rec = obs::GlobalRecorder();
  rec.Clear();
  {
    obs::Span root = obs::Span::StartRoot("test.root", /*force=*/true);
    ASSERT_TRUE(root.active());
    obs::Span child = obs::Span::Start("test.child");
    ASSERT_TRUE(child.active());
    EXPECT_EQ(child.context().trace_id, root.context().trace_id);
  }
  auto spans = rec.Snapshot();
  auto roots = SpansNamed(spans, "test.root");
  auto children = SpansNamed(spans, "test.child");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].parent_id, roots[0].span_id);
  EXPECT_EQ(children[0].trace_id, roots[0].trace_id);
  rec.Clear();
}

// --- Transport propagation --------------------------------------------------

class TraceTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceSampleEvery(1);
    obs::SetTraceSampling(true);
    obs::GlobalRecorder().Clear();
  }

  void StartServer(DeploymentOptions opts = {}) {
    deployment_ = std::make_unique<Deployment>(opts);
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter());
    ASSERT_TRUE(transport_->Start().ok());
    ASSERT_NE(transport_->port(), 0);
  }

  std::unique_ptr<RemoteDatabaseClient> Connect(
      ClientId id, RemoteClientOptions opts = {}) {
    auto client =
        RemoteDatabaseClient::Connect("127.0.0.1", transport_->port(), id, opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// Kills the transport and brings a fresh one up on the same port — a
  /// server restart from the client's point of view.
  void RestartTransport() {
    uint16_t port = transport_->port();
    transport_->Stop();
    TransportServerOptions opts;
    opts.port = port;
    transport_ = std::make_unique<TransportServer>(
        &deployment_->server(), &deployment_->dlm(), &deployment_->bus(),
        &deployment_->meter(), opts);
    ASSERT_TRUE(transport_->Start().ok());
  }

  void TearDown() override {
    transport_.reset();  // stops threads before the deployment dies
    deployment_.reset();
    obs::SetTraceSampling(false);
    obs::GlobalRecorder().Clear();
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<TransportServer> transport_;
};

TEST_F(TraceTransportTest, RpcCarriesContextAndDecomposesLatency) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->server_wire_version(), wire::kWireVersion);

  ClassId cls = client->DefineClass("Traced").value();
  ASSERT_TRUE(client->AddAttribute(cls, "N", ValueType::kInt).ok());
  Oid oid = client->AllocateOid();
  TxnId t = client->Begin();
  DatabaseObject obj = NewObject(client->schema(), cls, oid);
  ASSERT_TRUE(obj.SetByName(client->schema(), "N", Value(int64_t{1})).ok());
  ASSERT_TRUE(client->Insert(t, obj).ok());
  ASSERT_TRUE(client->Commit(t).ok());

  auto spans = obs::GlobalRecorder().Snapshot();
  // Client-side decomposition spans exist for the traced RPCs.
  auto roots = SpansNamed(spans, "Commit");
  ASSERT_FALSE(roots.empty());
  const obs::SpanRecord root = roots.back();
  auto within_trace = [&](const std::string& name) {
    for (const auto& s : SpansNamed(spans, name)) {
      if (s.trace_id == root.trace_id) return true;
    }
    return false;
  };
  EXPECT_TRUE(within_trace("client.serialize"));
  EXPECT_TRUE(within_trace("client.network"));
  EXPECT_TRUE(within_trace("client.deserialize"));
  // The server adopted the same trace id for its own child spans (both
  // processes share this test's recorder, so both sides are visible): the
  // full client -> network -> server queue -> execute chain is stitched.
  EXPECT_TRUE(within_trace("server.queue"));
  EXPECT_TRUE(within_trace("server.execute"));
  // Commit instrumentation deeper in the server stack joins the same trace.
  EXPECT_TRUE(within_trace("server.commit"));

  // Parentage: server.execute nests under the RPC root's context.
  bool execute_parented = false;
  for (const auto& s : SpansNamed(spans, "server.execute")) {
    if (s.trace_id == root.trace_id && s.parent_id == root.span_id) {
      execute_parented = true;
    }
  }
  EXPECT_TRUE(execute_parented);

  // The RPC latency decomposition histograms registered and recorded.
  auto counters = GlobalMetrics().CounterSnapshot();
  Histogram* total = GlobalMetrics().GetHistogram("rpc.Commit.total_us");
  Histogram* network = GlobalMetrics().GetHistogram("rpc.Commit.network_us");
  EXPECT_GE(total->Snapshot().count, 1u);
  EXPECT_GE(network->Snapshot().count, 1u);
  (void)counters;
}

TEST_F(TraceTransportTest, UntracedRpcsSendNoTraceHeader) {
  obs::SetTraceSampling(false);  // compiled in, sampling off
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  obs::GlobalRecorder().Clear();
  TxnId t = client->Begin();
  ASSERT_TRUE(client->Abort(t).ok());
  // No spans recorded anywhere: the hot path stayed dark.
  EXPECT_TRUE(obs::GlobalRecorder().Snapshot().empty());
}

TEST_F(TraceTransportTest, TracingSurvivesFaultsAndReconnect) {
  StartServer();
  RemoteClientOptions opts;
  opts.rpc_deadline_ms = 200;
  auto client = Connect(100, opts);
  ASSERT_NE(client, nullptr);
  ASSERT_EQ(client->server_wire_version(), wire::kWireVersion);

  // Drop the next inbound frame on the floor: the traced call times out
  // (its Span ends cleanly on the error path).
  auto faults = std::make_shared<FaultInjector>();
  faults->Inject({FaultDirection::kRead, FaultKind::kDrop, /*nth=*/0,
                  /*times=*/1, /*delay_ms=*/0});
  client->set_fault_injector(faults);
  Status st = client->BeginTxn().status();
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  ASSERT_GE(faults->faults_fired(), 1u);
  faults->Reset();

  // Kill the transport: the client observes a dead connection; Reconnect
  // against the restarted server renegotiates wire v2 from scratch.
  RestartTransport();
  ASSERT_TRUE(WaitFor([&] { return !client->connected(); }));
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_EQ(client->server_wire_version(), wire::kWireVersion);

  // Traced RPCs flow again end to end over the new connection.
  obs::GlobalRecorder().Clear();
  Result<TxnId> t = client->BeginTxn();
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_TRUE(client->Abort(t.value()).ok());
  auto spans = obs::GlobalRecorder().Snapshot();
  EXPECT_FALSE(SpansNamed(spans, "client.network").empty());
  EXPECT_FALSE(SpansNamed(spans, "server.execute").empty());
}

TEST_F(TraceTransportTest, TraceDumpRpcReturnsLoadableChromeTrace) {
  StartServer();
  auto client = Connect(100);
  ASSERT_NE(client, nullptr);
  TxnId t = client->Begin();
  ASSERT_TRUE(client->Abort(t).ok());

  std::string chrome = obs::GlobalRecorder().DumpChromeTrace();
  EXPECT_TRUE(JsonChecker(chrome).Valid());
  EXPECT_NE(chrome.find("client.network"), std::string::npos);
  EXPECT_NE(chrome.find("server.execute"), std::string::npos);
}

// --- Staleness telemetry ----------------------------------------------------

class StalenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    staleness_ = GlobalMetrics().GetHistogram("display.staleness_vtime");
    refresh_lag_ = GlobalMetrics().GetHistogram("display.refresh_lag_vtime");
    base_ = staleness_->Snapshot().count;
    lag_base_ = refresh_lag_->Snapshot().count;
  }

  void Init() {
    deployment_ = std::make_unique<Deployment>(DeploymentOptions{});
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }

  void UpdateLink(ClientApi* writer, Oid oid, double util) {
    const SchemaCatalog& cat = writer->schema();
    TxnId t = writer->Begin();
    DatabaseObject link = writer->Read(t, oid).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(util)).ok());
    ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
    ASSERT_TRUE(writer->Commit(t).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
  Histogram* staleness_ = nullptr;
  Histogram* refresh_lag_ = nullptr;
  uint64_t base_ = 0;
  uint64_t lag_base_ = 0;
};

TEST_F(StalenessTest, OneSamplePerNotifiedSubscriber) {
  Init();
  auto viewer1 = deployment_->NewSession(100);
  auto viewer2 = deployment_->NewSession(101);
  auto writer = deployment_->NewSession(102);
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(viewer1->CreateView("v1")->Materialize(dc, {oid}).ok());
  ASSERT_TRUE(viewer2->CreateView("v2")->Materialize(dc, {oid}).ok());

  UpdateLink(&writer->client(), oid, 0.95);

  // One staleness sample per notified subscriber (two viewers; the writer
  // holds no display lock on the link).
  auto snap = staleness_->Snapshot();
  EXPECT_EQ(snap.count, base_ + 2);
  // Virtual staleness is strictly positive: the notification costs at
  // least one message flight (vtime ticks), so a subscriber's display can
  // never learn of the commit at the commit instant.
  EXPECT_GT(snap.min, 0.0);
}

TEST_F(StalenessTest, RefreshLagRecordedWhenViewRefreshes) {
  Init();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  UpdateLink(&writer->client(), oid, 0.95);
  EXPECT_EQ(viewer->PumpOnce(), 1);
  EXPECT_EQ(view->refreshes(), 1u);

  // End-to-end lag (commit -> refreshed display) is at least the notify
  // staleness recorded at the DLM: the display cannot be fresher than the
  // notification that woke it.
  auto lag = refresh_lag_->Snapshot();
  ASSERT_EQ(lag.count, lag_base_ + 1);
  EXPECT_GT(lag.max, 0.0);
  EXPECT_GE(lag.max, staleness_->Snapshot().min);
}

TEST_F(StalenessTest, NotificationCarriesWriterTraceToSubscriberDispatch) {
  Init();
  obs::GlobalRecorder().Clear();
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(view->Materialize(dc, {oid}).ok());

  uint64_t writer_trace = 0;
  {
    obs::Span commit_root = obs::Span::StartRoot("test.commit", /*force=*/true);
    ASSERT_TRUE(commit_root.active());
    writer_trace = commit_root.context().trace_id;
    UpdateLink(&writer->client(), oid, 0.95);
  }
  EXPECT_EQ(viewer->PumpOnce(), 1);

  // The DLM stamped the writer's context on the notification envelope; the
  // subscriber's dispatch span joined the writer's trace.
  auto spans = obs::GlobalRecorder().Snapshot();
  bool stitched = false;
  for (const auto& s : SpansNamed(spans, "dlc.dispatch")) {
    if (s.trace_id == writer_trace) stitched = true;
  }
  EXPECT_TRUE(stitched);
  bool fanout_in_trace = false;
  for (const auto& s : SpansNamed(spans, "dlm.notify_fanout")) {
    if (s.trace_id == writer_trace) fanout_in_trace = true;
  }
  EXPECT_TRUE(fanout_in_trace);
  obs::GlobalRecorder().Clear();
}

}  // namespace
}  // namespace idba
