// File-backed durability: a DurableDatabase survives crashes (destruction
// without checkpoint) with every committed transaction intact.

#include "server/durable.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace idba {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/idba_durable_" + std::to_string(::getpid()) +
           "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ClassId EnsureSchema(DatabaseServer& server) {
    if (const ClassDef* cls = server.schema().FindByName("Item")) {
      return cls->id();
    }
    ClassId cls = server.schema().DefineClass("Item").value();
    EXPECT_TRUE(server.schema().AddAttribute(cls, "Payload", ValueType::kString).ok());
    return cls;
  }

  Oid CommitInsert(DatabaseServer& server, ClassId cls, const std::string& payload) {
    TxnId t = server.Begin(0);
    Oid oid = server.AllocateOid();
    DatabaseObject obj(oid, cls, 1);
    obj.Set(0, Value(payload));
    EXPECT_TRUE(server.Insert(0, t, std::move(obj), nullptr).ok());
    EXPECT_TRUE(server.Commit(0, t, nullptr).ok());
    return oid;
  }

  std::string dir_;
};

TEST_F(DurabilityTest, FreshDatabaseOpensEmpty) {
  auto db = DurableDatabase::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->server().heap().object_count(), 0u);
  EXPECT_EQ(db.value()->recovery_stats().records_scanned, 0u);
}

TEST_F(DurabilityTest, CommittedDataSurvivesCrash) {
  Oid a, b;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    a = CommitInsert(db->server(), cls, "first");
    b = CommitInsert(db->server(), cls, "second");
    // No Checkpoint(): destruction is a crash. Data pages never hit disk;
    // the WAL (forced at each commit) carries everything.
  }
  auto db = DurableDatabase::Open(dir_).value();
  ClassId cls = EnsureSchema(db->server());
  (void)cls;
  EXPECT_GE(db->recovery_stats().committed_txns, 2u);
  EXPECT_EQ(db->server().heap().object_count(), 2u);
  EXPECT_EQ(db->server().heap().Read(a).value().Get(0), Value("first"));
  EXPECT_EQ(db->server().heap().Read(b).value().Get(0), Value("second"));
}

TEST_F(DurabilityTest, UncommittedDataDoesNotSurvive) {
  Oid committed;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    committed = CommitInsert(db->server(), cls, "kept");
    // An in-flight transaction at crash time.
    TxnId t = db->server().Begin(0);
    DatabaseObject obj(db->server().AllocateOid(), cls, 1);
    obj.Set(0, Value("lost"));
    ASSERT_TRUE(db->server().Insert(0, t, std::move(obj), nullptr).ok());
    // crash before commit
  }
  auto db = DurableDatabase::Open(dir_).value();
  EXPECT_EQ(db->server().heap().object_count(), 1u);
  EXPECT_EQ(db->server().heap().Read(committed).value().Get(0), Value("kept"));
}

TEST_F(DurabilityTest, CheckpointTruncatesLogAndCrashStillRecovers) {
  Oid a;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    a = CommitInsert(db->server(), cls, "checkpointed");
    uint64_t wal_pages_before = db->server().wal().DiskPages();
    EXPECT_GT(wal_pages_before, 0u);
    ASSERT_TRUE(db->Checkpoint().ok());
    // The checkpoint truncated the log.
    EXPECT_EQ(db->server().wal().DiskPages(), 0u);
    CommitInsert(db->server(), cls, "after-checkpoint");
  }
  auto db = DurableDatabase::Open(dir_).value();
  // Both objects present: the first from its flushed page, the second from
  // the (short) post-checkpoint log.
  EXPECT_EQ(db->server().heap().object_count(), 2u);
  EXPECT_EQ(db->server().heap().Read(a).value().Get(0), Value("checkpointed"));
  // Only post-checkpoint records were scanned.
  EXPECT_LE(db->recovery_stats().records_scanned, 3u);
}

TEST_F(DurabilityTest, UpdatesAndErasesSurviveManyRestarts) {
  std::vector<Oid> oids;
  {
    auto db = DurableDatabase::Open(dir_).value();
    ClassId cls = EnsureSchema(db->server());
    for (int i = 0; i < 10; ++i) {
      oids.push_back(CommitInsert(db->server(), cls, "v0-" + std::to_string(i)));
    }
  }
  for (int round = 1; round <= 3; ++round) {
    auto db = DurableDatabase::Open(dir_).value();
    // Update even oids, erase nothing; verify previous round's state.
    for (size_t i = 0; i < oids.size(); i += 2) {
      auto cur = db->server().heap().Read(oids[i]);
      ASSERT_TRUE(cur.ok());
      TxnId t = db->server().Begin(0);
      DatabaseObject obj = cur.value();
      obj.Set(0, Value("v" + std::to_string(round) + "-" + std::to_string(i)));
      ASSERT_TRUE(db->server().Put(0, t, std::move(obj), nullptr).ok());
      ASSERT_TRUE(db->server().Commit(0, t, nullptr).ok());
    }
    if (round == 2) ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = DurableDatabase::Open(dir_).value();
  EXPECT_EQ(db->server().heap().object_count(), 10u);
  EXPECT_EQ(db->server().heap().Read(oids[0]).value().Get(0), Value("v3-0"));
  EXPECT_EQ(db->server().heap().Read(oids[1]).value().Get(0), Value("v0-1"));
}

}  // namespace
}  // namespace idba
