#include <gtest/gtest.h>

#include "client/database_client.h"

namespace idba {
namespace {

class ClientServerTest : public ::testing::Test {
 protected:
  ClientServerTest() {
    link_ = server_.schema().DefineClass("Link").value();
    EXPECT_TRUE(server_.schema()
                    .AddAttribute(link_, "Utilization", ValueType::kDouble,
                                  Value(0.0))
                    .ok());
    EXPECT_TRUE(
        server_.schema().AddAttribute(link_, "Name", ValueType::kString).ok());
    a_ = std::make_unique<DatabaseClient>(&server_, 100, &meter_, &bus_);
    b_ = std::make_unique<DatabaseClient>(&server_, 101, &meter_, &bus_);
  }

  Oid SeedLink(double util) {
    TxnId t = a_->Begin();
    Oid oid = a_->AllocateOid();
    DatabaseObject obj(oid, link_, 2);
    obj.Set(0, Value(util));
    obj.Set(1, Value("link"));
    EXPECT_TRUE(a_->Insert(t, std::move(obj)).ok());
    EXPECT_TRUE(a_->Commit(t).ok());
    return oid;
  }

  DatabaseServer server_;
  NotificationBus bus_;
  RpcMeter meter_;
  ClassId link_;
  std::unique_ptr<DatabaseClient> a_, b_;
};

TEST_F(ClientServerTest, CachedReadsAvoidDataTransfer) {
  Oid oid = SeedLink(0.5);
  uint64_t rpcs_before = b_->rpcs_issued();
  TxnId t = b_->Begin();
  ASSERT_TRUE(b_->Read(t, oid).ok());
  ASSERT_TRUE(b_->Commit(t).ok());
  uint64_t after_first = b_->rpcs_issued();
  EXPECT_GT(after_first, rpcs_before);

  // Display-style read (degree 0) across transaction boundaries: zero
  // server traffic — the §3.3 avoidance-based promise for displays.
  uint64_t bytes_before = meter_.bytes();
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  EXPECT_EQ(b_->rpcs_issued(), after_first);
  EXPECT_EQ(meter_.bytes(), bytes_before);

  // Transactional read of the cached copy: no DATA travels, but (lock
  // caching being out of scope) a small lock-only round trip grants the
  // S lock that makes acting on the copy serializable.
  TxnId t2 = b_->Begin();
  auto obj = b_->Read(t2, oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().GetByName(server_.schema(), "Utilization").value(),
            Value(0.5));
  EXPECT_EQ(b_->rpcs_issued(), after_first + 1);  // the lock-only RPC
  // Far fewer bytes than shipping the (wide) object again.
  EXPECT_LT(meter_.bytes() - bytes_before, 100u);
  ASSERT_TRUE(b_->Commit(t2).ok());
}

TEST_F(ClientServerTest, AvoidanceBasedCoherency_NoStaleReadEver) {
  Oid oid = SeedLink(0.1);
  // B caches the object.
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  EXPECT_TRUE(b_->cache().Contains(oid));

  // A updates it: B's copy must be called back during commit.
  TxnId t = a_->Begin();
  auto obj = a_->Read(t, oid);
  ASSERT_TRUE(obj.ok());
  DatabaseObject updated = std::move(obj).value();
  ASSERT_TRUE(
      updated.SetByName(server_.schema(), "Utilization", Value(0.9)).ok());
  ASSERT_TRUE(a_->Write(t, std::move(updated)).ok());
  ASSERT_TRUE(a_->Commit(t).ok());

  EXPECT_FALSE(b_->cache().Contains(oid));  // invalidated, not stale
  auto fresh = b_->ReadCurrent(oid);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().GetByName(server_.schema(), "Utilization").value(),
            Value(0.9));
}

TEST_F(ClientServerTest, WriterOwnCacheRefreshedByCommitReply) {
  Oid oid = SeedLink(0.1);
  ASSERT_TRUE(a_->ReadCurrent(oid).ok());
  TxnId t = a_->Begin();
  DatabaseObject updated = a_->Read(t, oid).value();
  ASSERT_TRUE(
      updated.SetByName(server_.schema(), "Utilization", Value(0.7)).ok());
  ASSERT_TRUE(a_->Write(t, std::move(updated)).ok());
  ASSERT_TRUE(a_->Commit(t).ok());
  // A's own cached copy reflects the commit (no stale self-read).
  auto cached = a_->cache().Get(oid);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->GetByName(server_.schema(), "Utilization").value(),
            Value(0.7));
  EXPECT_EQ(cached->version(), 2u);
}


// --- Callback fan-out soak -------------------------------------------------
//
// Avoidance-based coherency at population scale: a crowd of clients all
// cache the same hot object, a writer commits a stream of updates, and not
// one cached copy is ever stale — every commit called back every holder
// before completing. (The TCP analogue, with the single-serialization
// NOTIFY fan-out assertion, lives in transport_fault_test.)
TEST_F(ClientServerTest, ManyClientCallbackFanoutKeepsAllCachesCoherent) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr int kReaders = 64;
#else
  constexpr int kReaders = 256;
#endif
  constexpr int kCommits = 4;
  Oid oid = SeedLink(0.1);

  std::vector<std::unique_ptr<DatabaseClient>> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(
        std::make_unique<DatabaseClient>(&server_, 1000 + i, &meter_, &bus_));
    ASSERT_TRUE(readers.back()->ReadCurrent(oid).ok());
    ASSERT_TRUE(readers.back()->cache().Contains(oid));
  }

  for (int c = 0; c < kCommits; ++c) {
    const double value = 0.2 + 0.1 * c;
    TxnId t = a_->Begin();
    auto obj = a_->Read(t, oid);
    ASSERT_TRUE(obj.ok());
    DatabaseObject updated = std::move(obj).value();
    ASSERT_TRUE(
        updated.SetByName(server_.schema(), "Utilization", Value(value)).ok());
    ASSERT_TRUE(a_->Write(t, std::move(updated)).ok());
    ASSERT_TRUE(a_->Commit(t).ok());

    // The commit invalidated every holder; each refetch observes the new
    // value and re-registers for the next round.
    for (auto& reader : readers) {
      EXPECT_FALSE(reader->cache().Contains(oid));
      auto fresh = reader->ReadCurrent(oid);
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(
          fresh.value().GetByName(server_.schema(), "Utilization").value(),
          Value(value));
    }
  }
}

TEST_F(ClientServerTest, CommitChargesCallbackRoundTrips) {
  Oid oid = SeedLink(0.1);
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  ServerCallInfo info;
  TxnId t = server_.Begin(100);
  DatabaseObject obj = server_.Fetch(100, t, oid, nullptr).value();
  ASSERT_TRUE(
      obj.SetByName(server_.schema(), "Utilization", Value(0.3)).ok());
  ASSERT_TRUE(server_.Put(100, t, std::move(obj), nullptr).ok());
  ASSERT_TRUE(server_.Commit(100, t, &info).ok());
  EXPECT_EQ(info.callbacks, 1);  // B held the only remote copy
}

TEST_F(ClientServerTest, ScanClassReturnsAllAndCaches) {
  SeedLink(0.1);
  SeedLink(0.2);
  SeedLink(0.3);
  auto objs = b_->ScanClass(link_);
  ASSERT_TRUE(objs.ok());
  EXPECT_EQ(objs.value().size(), 3u);
  EXPECT_EQ(b_->cache().entry_count(), 3u);
}

TEST_F(ClientServerTest, VirtualClockAdvancesWithTraffic) {
  Oid oid = SeedLink(0.5);
  VTime before = b_->clock().Now();
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  VTime after_fetch = b_->clock().Now();
  EXPECT_GT(after_fetch, before);  // two hops + server time charged
  // Cache hit: no virtual time passes.
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  EXPECT_EQ(b_->clock().Now(), after_fetch);
}

TEST_F(ClientServerTest, ConflictingWritersSerialize) {
  Oid oid = SeedLink(0.0);
  constexpr int kRounds = 25;
  auto work = [&](DatabaseClient* client) {
    for (int i = 0; i < kRounds; ++i) {
      for (;;) {
        TxnId t = client->Begin();
        auto obj = client->Read(t, oid);
        if (!obj.ok()) {
          (void)client->Abort(t);
          continue;
        }
        DatabaseObject o = std::move(obj).value();
        double u =
            o.GetByName(client->schema(), "Utilization").value().AsDouble();
        (void)o.SetByName(client->schema(), "Utilization", Value(u + 1.0));
        if (!client->Write(t, std::move(o)).ok()) {
          (void)client->Abort(t);
          continue;
        }
        if (client->Commit(t).ok()) break;
      }
    }
  };
  std::thread ta([&] { work(a_.get()); });
  std::thread tb([&] { work(b_.get()); });
  ta.join();
  tb.join();
  // Every increment survived: the final value proves serialized RMWs.
  auto obj = a_->ReadCurrent(oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_DOUBLE_EQ(
      obj.value().GetByName(server_.schema(), "Utilization").value().AsDouble(),
      2.0 * kRounds);
}

TEST_F(ClientServerTest, DisconnectCleansUp) {
  Oid oid = SeedLink(0.5);
  ASSERT_TRUE(b_->ReadCurrent(oid).ok());
  b_.reset();  // disconnects
  // A's update must not try to call back the vanished client.
  TxnId t = a_->Begin();
  DatabaseObject obj = a_->Read(t, oid).value();
  ASSERT_TRUE(obj.SetByName(server_.schema(), "Utilization", Value(1.0)).ok());
  ASSERT_TRUE(a_->Write(t, std::move(obj)).ok());
  EXPECT_TRUE(a_->Commit(t).ok());
}

TEST_F(ClientServerTest, EvictionNoticeKeepsRegistryTight) {
  // Tiny cache: every new object evicts the previous one.
  DatabaseClient c(&server_, 102, &meter_, &bus_,
                   DatabaseClientOptions{.cache = {.capacity_bytes = 1}});
  Oid o1 = SeedLink(0.1);
  Oid o2 = SeedLink(0.2);
  ASSERT_TRUE(c.ReadCurrent(o1).ok());
  ASSERT_TRUE(c.ReadCurrent(o2).ok());  // evicts o1, server notified
  EXPECT_EQ(server_.callback_manager().CopyHolders(o1).size(), 0u);
  EXPECT_EQ(server_.callback_manager().CopyHolders(o2).size(), 1u);
}

}  // namespace
}  // namespace idba
