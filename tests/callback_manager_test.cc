#include "server/callback_manager.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

class RecordingHandler : public CacheCallbackHandler {
 public:
  void InvalidateCached(Oid oid, uint64_t new_version) override {
    invalidated.emplace_back(oid, new_version);
  }
  std::vector<std::pair<Oid, uint64_t>> invalidated;
};

TEST(CallbackManagerTest, InvalidatesRemoteCopiesOnly) {
  CallbackManager cm;
  RecordingHandler h1, h2, h3;
  cm.RegisterClient(1, &h1);
  cm.RegisterClient(2, &h2);
  cm.RegisterClient(3, &h3);
  cm.NoteCached(1, Oid(10));
  cm.NoteCached(2, Oid(10));
  // Client 3 does not cache Oid(10).

  int callbacks = cm.OnCommittedUpdate(/*writer=*/1, Oid(10), 5);
  EXPECT_EQ(callbacks, 1);  // only client 2
  EXPECT_TRUE(h1.invalidated.empty());
  ASSERT_EQ(h2.invalidated.size(), 1u);
  EXPECT_EQ(h2.invalidated[0], std::make_pair(Oid(10), uint64_t(5)));
  EXPECT_TRUE(h3.invalidated.empty());
}

TEST(CallbackManagerTest, CalledBackCopiesAreDeregistered) {
  CallbackManager cm;
  RecordingHandler h2;
  cm.RegisterClient(1, nullptr);
  cm.RegisterClient(2, &h2);
  cm.NoteCached(2, Oid(10));
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(10), 1), 1);
  // Second update: client 2 no longer holds a copy.
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(10), 2), 0);
  EXPECT_EQ(h2.invalidated.size(), 1u);
}

TEST(CallbackManagerTest, NoteDroppedAvoidsCallback) {
  CallbackManager cm;
  RecordingHandler h2;
  cm.RegisterClient(2, &h2);
  cm.NoteCached(2, Oid(10));
  cm.NoteDropped(2, Oid(10));
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(10), 1), 0);
  EXPECT_TRUE(h2.invalidated.empty());
}

TEST(CallbackManagerTest, CopyHoldersListed) {
  CallbackManager cm;
  cm.RegisterClient(1, nullptr);
  cm.RegisterClient(2, nullptr);
  cm.NoteCached(1, Oid(5));
  cm.NoteCached(2, Oid(5));
  auto holders = cm.CopyHolders(Oid(5));
  EXPECT_EQ(holders.size(), 2u);
  EXPECT_TRUE(cm.CopyHolders(Oid(6)).empty());
}

TEST(CallbackManagerTest, UnregisterDropsAllCopies) {
  CallbackManager cm;
  RecordingHandler h2;
  cm.RegisterClient(2, &h2);
  cm.NoteCached(2, Oid(1));
  cm.NoteCached(2, Oid(2));
  cm.UnregisterClient(2);
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(1), 1), 0);
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(2), 1), 0);
  EXPECT_TRUE(cm.CopyHolders(Oid(1)).empty());
}

TEST(CallbackManagerTest, CallbackCounterAccumulates) {
  CallbackManager cm;
  RecordingHandler h2, h3;
  cm.RegisterClient(2, &h2);
  cm.RegisterClient(3, &h3);
  cm.NoteCached(2, Oid(1));
  cm.NoteCached(3, Oid(1));
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(1), 1), 2);
  EXPECT_EQ(cm.callbacks_issued(), 2u);
}

TEST(CallbackManagerTest, HandlerMayReenter) {
  // A handler that reports a drop of another OID during its callback must
  // not deadlock (callbacks are issued outside the registry lock).
  class ReentrantHandler : public CacheCallbackHandler {
   public:
    explicit ReentrantHandler(CallbackManager* cm) : cm_(cm) {}
    void InvalidateCached(Oid, uint64_t) override {
      cm_->NoteDropped(2, Oid(99));
    }
    CallbackManager* cm_;
  };
  CallbackManager cm;
  ReentrantHandler h(&cm);
  cm.RegisterClient(2, &h);
  cm.NoteCached(2, Oid(1));
  cm.NoteCached(2, Oid(99));
  EXPECT_EQ(cm.OnCommittedUpdate(1, Oid(1), 1), 1);
  EXPECT_TRUE(cm.CopyHolders(Oid(99)).empty());
}

}  // namespace
}  // namespace idba
