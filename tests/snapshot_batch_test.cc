// Tests for two §3.1/§4.2 refinements: passive snapshots (the paper's
// contrast to active views) and batched display-lock requests.

#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

class SnapshotBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 8;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }

  void UpdateLink(ClientApi* writer, Oid oid, double util) {
    const SchemaCatalog& cat = writer->schema();
    TxnId t = writer->Begin();
    DatabaseObject link = writer->Read(t, oid).value();
    ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(util)).ok());
    ASSERT_TRUE(writer->Write(t, std::move(link)).ok());
    ASSERT_TRUE(writer->Commit(t).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

// --- Passive snapshots ------------------------------------------------------

TEST_F(SnapshotBatchTest, SnapshotTakesNoDisplayLocks) {
  auto session = deployment_->NewSession(100);
  ActiveView* snap = session->CreateView("snapshot", {.subscribe = false});
  ASSERT_TRUE(
      snap->PopulateFromClass(deployment_->display_schema().Find(dcs_.color_coded_link))
          .ok());
  EXPECT_FALSE(snap->subscribed());
  EXPECT_EQ(deployment_->dlm().locked_object_count(), 0u);
  EXPECT_EQ(session->dlc().remote_lock_requests(), 0u);
}

TEST_F(SnapshotBatchTest, SnapshotGoesStaleActiveViewDoesNot) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  const DisplayClassDef* dc =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ActiveView* active = viewer->CreateView("active");
  ActiveView* snap = viewer->CreateView("snapshot", {.subscribe = false});
  ASSERT_TRUE(active->Materialize(dc, {db_.link_oids[0]}).ok());
  ASSERT_TRUE(snap->Materialize(dc, {db_.link_oids[0]}).ok());
  EXPECT_EQ(active->CountStaleObjects(), 0u);
  EXPECT_EQ(snap->CountStaleObjects(), 0u);

  UpdateLink(&writer->client(), db_.link_oids[0], 0.99);
  viewer->PumpOnce();
  // The active view refreshed; the snapshot silently shows the old state
  // — the paper's "passive snapshot" failure mode.
  EXPECT_EQ(active->CountStaleObjects(), 0u);
  EXPECT_EQ(active->refreshes(), 1u);
  EXPECT_EQ(snap->CountStaleObjects(), 1u);
  EXPECT_EQ(snap->refreshes(), 0u);
}

TEST_F(SnapshotBatchTest, SnapshotDismissAndCloseAreClean) {
  auto session = deployment_->NewSession(100);
  ActiveView* snap = session->CreateView("snapshot", {.subscribe = false});
  auto dob = snap->Materialize(
      deployment_->display_schema().Find(dcs_.color_coded_link),
      {db_.link_oids[0]});
  ASSERT_TRUE(dob.ok());
  EXPECT_TRUE(snap->Dismiss(dob.value()->id()).ok());
  snap->Close();
  EXPECT_EQ(session->display_cache().object_count(), 0u);
}

// --- Batched display-lock requests ------------------------------------------

TEST_F(SnapshotBatchTest, PopulateSendsOneLockMessageForWholeView) {
  auto session = deployment_->NewSession(100);
  ActiveView* view = session->CreateView("links");
  ASSERT_TRUE(
      view->PopulateFromClass(deployment_->display_schema().Find(dcs_.color_coded_link))
          .ok());
  // N objects displayed, ONE message to the DLM.
  EXPECT_EQ(view->size(), db_.link_oids.size());
  EXPECT_EQ(session->dlc().remote_lock_requests(), 1u);
  EXPECT_EQ(deployment_->dlm().lock_requests(), 1u);
  // All locks really registered.
  for (Oid oid : db_.link_oids) {
    EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  }
}

TEST_F(SnapshotBatchTest, BatchedLocksStillNotify) {
  auto viewer = deployment_->NewSession(100);
  auto writer = deployment_->NewSession(101);
  ActiveView* view = viewer->CreateView("links");
  ASSERT_TRUE(
      view->PopulateFromClass(deployment_->display_schema().Find(dcs_.color_coded_link))
          .ok());
  UpdateLink(&writer->client(), db_.link_oids[2], 0.77);
  viewer->PumpOnce();
  EXPECT_EQ(view->refreshes(), 1u);
}

TEST_F(SnapshotBatchTest, EmptyBatchIsFree) {
  auto session = deployment_->NewSession(100);
  session->dlc().BeginLockBatch();
  ASSERT_TRUE(session->dlc().EndLockBatch().ok());
  EXPECT_EQ(session->dlc().remote_lock_requests(), 0u);
}

TEST_F(SnapshotBatchTest, DlmBatchLockUnlockRoundTrip) {
  std::vector<Oid> oids = {db_.link_oids[0], db_.link_oids[1], db_.link_oids[2]};
  ASSERT_TRUE(deployment_->dlm().LockBatch(100, oids, 0).ok());
  EXPECT_EQ(deployment_->dlm().lock_requests(), 1u);
  for (Oid oid : oids) EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  ASSERT_TRUE(deployment_->dlm().UnlockBatch(100, oids, 0).ok());
  for (Oid oid : oids) EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
  EXPECT_EQ(deployment_->dlm().unlock_requests(), 1u);
}

TEST_F(SnapshotBatchTest, BatchWithMultipleViewsCoalescesPerClient) {
  auto session = deployment_->NewSession(100);
  const DisplayClassDef* color =
      deployment_->display_schema().Find(dcs_.color_coded_link);
  ActiveView* v1 = session->CreateView("a");
  ActiveView* v2 = session->CreateView("b");
  session->dlc().BeginLockBatch();
  ASSERT_TRUE(v1->Materialize(color, {db_.link_oids[0]}).ok());
  ASSERT_TRUE(v2->Materialize(color, {db_.link_oids[1]}).ok());
  ASSERT_TRUE(session->dlc().EndLockBatch().ok());
  // Hierarchical DLC: both views share the client's remote id -> 1 message.
  EXPECT_EQ(session->dlc().remote_lock_requests(), 1u);
  EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[0]), 1u);
  EXPECT_EQ(deployment_->dlm().holder_count(db_.link_oids[1]), 1u);
}

}  // namespace
}  // namespace idba
