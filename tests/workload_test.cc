#include "nms/workload.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.network.num_nodes = 10;
  config.network.sites = 1;
  config.network.buildings_per_site = 1;
  config.network.racks_per_building = 1;
  config.network.devices_per_rack = 1;
  config.operators = 3;
  config.operator_options.update_probability = 0.4;
  config.operator_options.view_size = 8;
  config.steps_per_operator = 30;
  return config;
}

TEST(WorkloadTest, DeterministicRunProducesConsistentDisplays) {
  auto runner = WorkloadRunner::Create(SmallConfig());
  ASSERT_TRUE(runner.ok());
  auto report = runner.value()->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().monitor_actions, 0u);
  EXPECT_GT(report.value().updates_committed, 0u);
  EXPECT_GT(report.value().refreshes, 0u);
  EXPECT_GT(report.value().monitor_commits, 0u);
  // The defining invariant: after draining, no display is stale.
  EXPECT_EQ(report.value().stale_display_objects, 0u);
  // Deployment stats captured.
  EXPECT_GT(report.value().deployment_stats.commits, 0u);
  EXPECT_GT(report.value().deployment_stats.update_notifications, 0u);
  // The summary mentions its key fields.
  std::string summary = report.value().Summary();
  EXPECT_NE(summary.find("refreshes"), std::string::npos);
  EXPECT_NE(summary.find("propagation"), std::string::npos);
}

TEST(WorkloadTest, DeterministicRunsRepeatExactly) {
  auto ReportCounts = [](const WorkloadReport& r) {
    return std::make_tuple(r.monitor_actions, r.updates_attempted,
                           r.updates_committed, r.refreshes, r.monitor_commits);
  };
  auto r1 = WorkloadRunner::Create(SmallConfig()).value()->Run().value();
  auto r2 = WorkloadRunner::Create(SmallConfig()).value()->Run().value();
  EXPECT_EQ(ReportCounts(r1), ReportCounts(r2));
}

TEST(WorkloadTest, ThreadedRunAlsoEndsConsistent) {
  WorkloadConfig config = SmallConfig();
  config.threaded = true;
  config.operator_options.update_probability = 0.6;
  auto runner = WorkloadRunner::Create(config);
  ASSERT_TRUE(runner.ok());
  auto report = runner.value()->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().stale_display_objects, 0u);
  EXPECT_GT(report.value().updates_committed, 0u);
}

TEST(WorkloadTest, EarlyNotifyConfigCarriesThrough) {
  WorkloadConfig config = SmallConfig();
  config.deployment.dlm.protocol = NotifyProtocol::kEarlyNotify;
  config.operator_options.honor_update_marks = true;
  config.operator_options.update_probability = 0.9;
  config.operator_options.links_per_update = 2;
  config.threaded = true;
  config.operators = 4;
  auto report = WorkloadRunner::Create(config).value()->Run().value();
  // Early notify active: intents were broadcast (marks observed or not,
  // depending on timing, but the DLM counter must move).
  EXPECT_GT(report.deployment_stats.intent_notifications, 0u);
  EXPECT_EQ(report.stale_display_objects, 0u);
}

TEST(WorkloadTest, RunIsSingleShot) {
  auto runner = WorkloadRunner::Create(SmallConfig()).value();
  ASSERT_TRUE(runner->Run().ok());
  EXPECT_EQ(runner->Run().status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadTest, MonitorCanBeDisabled) {
  WorkloadConfig config = SmallConfig();
  config.monitor_steps_per_round = 0;
  auto report = WorkloadRunner::Create(config).value()->Run().value();
  EXPECT_EQ(report.monitor_commits, 0u);
}

}  // namespace
}  // namespace idba
