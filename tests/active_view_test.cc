#include "core/active_view.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"
#include "viz/color.h"

namespace idba {
namespace {

class ActiveViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<Deployment>();
    NmsConfig config;
    config.num_nodes = 6;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 2;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
    viewer_ = deployment_->NewSession(100);
    writer_ = deployment_->NewSession(101);
  }

  const DisplayClassDef* Dc(DisplayClassId id) {
    return deployment_->display_schema().Find(id);
  }

  void UpdateUtil(Oid oid, double util) {
    const SchemaCatalog& cat = writer_->client().schema();
    TxnId t = writer_->client().Begin();
    DatabaseObject obj = writer_->client().Read(t, oid).value();
    ASSERT_TRUE(obj.SetByName(cat, "Utilization", Value(util)).ok());
    ASSERT_TRUE(writer_->client().Write(t, std::move(obj)).ok());
    ASSERT_TRUE(writer_->client().Commit(t).ok());
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
  std::unique_ptr<InteractiveSession> viewer_, writer_;
};

TEST_F(ActiveViewTest, MaterializeReadsLocksAndCaches) {
  ActiveView* view = viewer_->CreateView("v");
  Oid oid = db_.link_oids[0];
  auto dob = view->Materialize(Dc(dcs_.color_coded_link), {oid});
  ASSERT_TRUE(dob.ok());
  EXPECT_FALSE(dob.value()->dirty());
  EXPECT_TRUE(dob.value()->Has("Color"));
  // Display lock held, DB copy cached, DO pinned.
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  EXPECT_TRUE(viewer_->client().cache().Contains(oid));
  EXPECT_EQ(viewer_->display_cache().object_count(), 1u);
  EXPECT_EQ(view->size(), 1u);
}

TEST_F(ActiveViewTest, PopulateFromClassBuildsWholeView) {
  ActiveView* view = viewer_->CreateView("v");
  auto dobs = view->PopulateFromClass(Dc(dcs_.color_coded_link));
  ASSERT_TRUE(dobs.ok());
  EXPECT_EQ(dobs.value().size(), db_.link_oids.size());
  EXPECT_EQ(view->size(), db_.link_oids.size());
  for (Oid oid : db_.link_oids) {
    EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);
  }
}

TEST_F(ActiveViewTest, PopulateWithSubclassesCoversHierarchy) {
  ActiveView* view = viewer_->CreateView("hw");
  auto dobs = view->PopulateFromClass(Dc(dcs_.hardware_tile),
                                      /*include_subclasses=*/true);
  ASSERT_TRUE(dobs.ok());
  EXPECT_EQ(dobs.value().size(), db_.all_hardware_oids.size());
}

TEST_F(ActiveViewTest, NotificationRefreshesOnlyAffected) {
  ActiveView* view = viewer_->CreateView("v");
  ASSERT_TRUE(view->PopulateFromClass(Dc(dcs_.color_coded_link)).ok());
  UpdateUtil(db_.link_oids[2], 0.99);
  viewer_->PumpOnce();
  EXPECT_EQ(view->refreshes(), 1u);
  for (DisplayObject* dob : view->display_objects()) {
    if (dob->sources()[0] == db_.link_oids[2]) {
      EXPECT_EQ(dob->Get("Utilization").value(), Value(0.99));
      EXPECT_EQ(dob->refresh_count(), 2u);  // initial + notify
    } else {
      EXPECT_EQ(dob->refresh_count(), 1u);  // untouched
    }
  }
}

TEST_F(ActiveViewTest, PropagationLatencyRecordedInPaperUnits) {
  ActiveView* view = viewer_->CreateView("v");
  ASSERT_TRUE(view->Materialize(Dc(dcs_.color_coded_link), {db_.link_oids[0]}).ok());
  UpdateUtil(db_.link_oids[0], 0.42);
  viewer_->PumpOnce();
  ASSERT_EQ(view->propagation_ms().count(), 1u);
  double ms = view->propagation_ms().mean();
  // Lazy path with default 1996 calibration: the paper's 1-2 s band.
  EXPECT_GE(ms, 500.0);
  EXPECT_LE(ms, 2500.0);
}

TEST_F(ActiveViewTest, MultiSourcePathRefreshesOnAnyMemberUpdate) {
  ActiveView* view = viewer_->CreateView("v");
  std::vector<Oid> path = {db_.link_oids[0], db_.link_oids[1], db_.link_oids[2]};
  auto dob = view->Materialize(Dc(dcs_.path_summary), path);
  ASSERT_TRUE(dob.ok());
  UpdateUtil(db_.link_oids[1], 1.0);
  viewer_->PumpOnce();
  EXPECT_EQ(view->refreshes(), 1u);
  EXPECT_EQ(dob.value()->Get("MaxUtilization").value(), Value(1.0));
  EXPECT_EQ(dob.value()->Get("Color").value(), Value("red"));
  EXPECT_EQ(dob.value()->Get("HopCount").value(), Value(int64_t(3)));
}

TEST_F(ActiveViewTest, DismissStopsNotifications) {
  ActiveView* view = viewer_->CreateView("v");
  Oid oid = db_.link_oids[0];
  auto dob = view->Materialize(Dc(dcs_.color_coded_link), {oid});
  ASSERT_TRUE(dob.ok());
  ASSERT_TRUE(view->Dismiss(dob.value()->id()).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
  EXPECT_EQ(viewer_->display_cache().object_count(), 0u);
  UpdateUtil(oid, 0.9);
  EXPECT_EQ(viewer_->client().inbox().pending(), 0u);
  EXPECT_EQ(view->refreshes(), 0u);
}

TEST_F(ActiveViewTest, CloseReleasesEverything) {
  ActiveView* view = viewer_->CreateView("v");
  ASSERT_TRUE(view->PopulateFromClass(Dc(dcs_.color_coded_link)).ok());
  view->Close();
  EXPECT_EQ(viewer_->display_cache().object_count(), 0u);
  for (Oid oid : db_.link_oids) {
    EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
  }
}

TEST_F(ActiveViewTest, GuiStateSurvivesRefresh) {
  ActiveView* view = viewer_->CreateView("v");
  Oid oid = db_.link_oids[0];
  auto dob = view->Materialize(Dc(dcs_.color_coded_link), {oid});
  ASSERT_TRUE(dob.ok());
  // The user dragged the element to (30, 40) — GUI-only state.
  ASSERT_TRUE(dob.value()->SetGui("X1", Value(30.0)).ok());
  ASSERT_TRUE(dob.value()->SetGui("Y1", Value(40.0)).ok());
  UpdateUtil(oid, 0.77);
  viewer_->PumpOnce();
  EXPECT_EQ(dob.value()->Get("X1").value(), Value(30.0));
  EXPECT_EQ(dob.value()->Get("Y1").value(), Value(40.0));
  EXPECT_EQ(dob.value()->Get("Utilization").value(), Value(0.77));
}

TEST_F(ActiveViewTest, TwoClientsBothNotified) {
  auto viewer2 = deployment_->NewSession(102);
  ActiveView* v1 = viewer_->CreateView("v1");
  ActiveView* v2 = viewer2->CreateView("v2");
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(v1->Materialize(Dc(dcs_.color_coded_link), {oid}).ok());
  ASSERT_TRUE(v2->Materialize(Dc(dcs_.width_coded_link), {oid}).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 2u);
  UpdateUtil(oid, 0.66);
  viewer_->PumpOnce();
  viewer2->PumpOnce();
  EXPECT_EQ(v1->refreshes(), 1u);
  EXPECT_EQ(v2->refreshes(), 1u);
  EXPECT_EQ(v2->display_objects()[0]->Get("Width").value(),
            Value(UtilizationWidth(0.66)));
}

}  // namespace
}  // namespace idba
