// End-to-end reproduction of the paper's §4.3 test setup: multiple
// concurrent operators performing monitoring and updating functions plus a
// separate continuously-updating monitor process, over the full stack
// (server + DLM agent + per-client DLC + active views).

#include <gtest/gtest.h>

#include <thread>

#include "core/session.h"
#include "nms/monitor.h"
#include "nms/operators.h"

namespace idba {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void Init(DlmOptions dlm_opts = {}) {
    DeploymentOptions opts;
    opts.dlm = dlm_opts;
    opts.server.integrated_display_locks = dlm_opts.integrated;
    deployment_ = std::make_unique<Deployment>(opts);
    NmsConfig config;
    config.num_nodes = 16;
    config.avg_degree = 3;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 2;
    config.devices_per_rack = 2;
    db_ = PopulateNms(&deployment_->server(), config).value();
    dcs_ = RegisterNmsDisplayClasses(&deployment_->display_schema(),
                                     deployment_->server().schema(), db_.schema)
               .value();
  }

  /// Verifies a view agrees exactly with the database (display
  /// consistency — the paper's core requirement).
  void ExpectViewConsistent(ActiveView* view) {
    const SchemaCatalog& cat = deployment_->server().schema();
    for (DisplayObject* dob : view->display_objects()) {
      auto db_obj = deployment_->server().heap().Read(dob->sources()[0]);
      ASSERT_TRUE(db_obj.ok());
      double db_util =
          db_obj.value().GetByName(cat, "Utilization").value().AsNumber();
      double shown = dob->Get("Utilization").value().AsNumber();
      EXPECT_DOUBLE_EQ(shown, db_util) << dob->sources()[0].ToString();
    }
  }

  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
  NmsDisplayClasses dcs_;
};

TEST_F(IntegrationTest, PaperScenario_FourOperatorsPlusMonitor) {
  Init();
  // 4 concurrent users (§4.3) with overlapping views + monitoring process.
  std::vector<std::unique_ptr<OperatorSession>> operators;
  for (int i = 0; i < 4; ++i) {
    OperatorOptions oo;
    oo.seed = 100 + i;
    oo.update_probability = 0.3;
    oo.view_size = 12;  // heavy overlap across operators
    operators.push_back(
        OperatorSession::Create(deployment_.get(), 100 + i, &db_, &dcs_, oo)
            .value());
  }
  auto monitor_session = deployment_->NewSession(50);
  MonitorProcess monitor(&monitor_session->client(), &db_,
                         MonitorOptions{.updates_per_step = 2});

  // Interleave: monitor churns continuously, operators act.
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(monitor.StepOnce().ok());
    for (auto& op : operators) ASSERT_TRUE(op->StepOnce().ok());
  }
  // Drain all remaining notifications, then every display must agree with
  // the database exactly.
  for (auto& op : operators) {
    op->session().PumpOnce();
    ExpectViewConsistent(op->view());
  }
  // The system really did deliver notifications.
  EXPECT_GT(deployment_->dlm().update_notifications(), 0u);
  for (auto& op : operators) EXPECT_GT(op->view()->refreshes(), 0u);
}

TEST_F(IntegrationTest, ConcurrentThreadsConvergeToConsistency) {
  Init();
  std::vector<std::unique_ptr<OperatorSession>> operators;
  for (int i = 0; i < 4; ++i) {
    OperatorOptions oo;
    oo.seed = 200 + i;
    oo.update_probability = 0.4;
    oo.view_size = 10;
    operators.push_back(
        OperatorSession::Create(deployment_.get(), 100 + i, &db_, &dcs_, oo)
            .value());
  }
  auto monitor_session = deployment_->NewSession(50);
  MonitorProcess monitor(&monitor_session->client(), &db_,
                         MonitorOptions{.interval_ms = 1});
  monitor.Start();
  std::vector<std::thread> threads;
  for (auto& op : operators) {
    threads.emplace_back([&op] {
      for (int i = 0; i < 50; ++i) {
        (void)op->StepOnce();
      }
    });
  }
  for (auto& t : threads) t.join();
  monitor.Stop();
  for (auto& op : operators) {
    op->session().PumpOnce();
    ExpectViewConsistent(op->view());
  }
}

TEST_F(IntegrationTest, EarlyNotifyReducesConflictPressure) {
  // Two runs with identical seeds and high contention; the early-notify
  // run honors marks. It must attempt risky updates less often while
  // still making progress (E5's mechanism in miniature).
  auto run = [&](bool early) {
    Init(DlmOptions{.protocol = early ? NotifyProtocol::kEarlyNotify
                                      : NotifyProtocol::kPostCommit});
    std::vector<std::unique_ptr<OperatorSession>> ops;
    for (int i = 0; i < 3; ++i) {
      OperatorOptions oo;
      oo.seed = 300 + i;
      oo.update_probability = 0.9;
      oo.zipf_theta = 1.2;  // hot set
      oo.view_size = 6;
      oo.honor_update_marks = early;
      ops.push_back(
          OperatorSession::Create(deployment_.get(), 100 + i, &db_, &dcs_, oo)
              .value());
    }
    std::vector<std::thread> threads;
    for (auto& op : ops) {
      threads.emplace_back([&op] {
        for (int i = 0; i < 60; ++i) (void)op->StepOnce();
      });
    }
    for (auto& t : threads) t.join();
    uint64_t commits = 0, skips = 0;
    for (auto& op : ops) {
      commits += op->updates_committed();
      skips += op->marked_skips();
    }
    return std::make_pair(commits, skips);
  };
  auto [commits_pc, skips_pc] = run(false);
  auto [commits_en, skips_en] = run(true);
  EXPECT_EQ(skips_pc, 0u);   // post-commit never marks
  EXPECT_GT(commits_pc, 0u);
  EXPECT_GT(commits_en, 0u);  // early-notify still makes progress
}

TEST_F(IntegrationTest, MemoryHierarchyFigure2Populated) {
  Init();
  auto session = deployment_->NewSession(100);
  ActiveView* view = session->CreateView("links");
  ASSERT_TRUE(view->PopulateFromClass(
                      deployment_->display_schema().Find(dcs_.color_coded_link))
                  .ok());
  // All four levels of the extended hierarchy hold data.
  EXPECT_GT(deployment_->server().heap().data_page_count(), 0u);   // disk
  EXPECT_GT(deployment_->server().buffer_pool().hits() +
                deployment_->server().buffer_pool().misses(),
            0u);                                                    // server RAM
  EXPECT_GT(session->client().cache().bytes_used(), 0u);            // client cache
  EXPECT_GT(session->display_cache().bytes_used(), 0u);             // display cache
  // And the paper's §4.3 size observation holds structurally.
  EXPECT_GT(session->client().cache().bytes_used(),
            session->display_cache().bytes_used());
}

TEST_F(IntegrationTest, ServerRestartRecoversAndViewsRebuild) {
  Init();
  // Run some updates, checkpoint nothing (simulate crash), recover.
  auto session = deployment_->NewSession(100);
  MonitorProcess monitor(&session->client(), &db_, MonitorOptions{});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(monitor.StepOnce().ok());
  const SchemaCatalog& cat = deployment_->server().schema();
  auto before = deployment_->server().heap().Read(db_.link_oids[0]).value();

  // The WAL disk is owned by the server here; in a production deployment
  // it would be a FileDisk. Verify at least that a checkpointed server
  // can rebuild its heap directory from pages.
  ASSERT_TRUE(deployment_->server().Checkpoint().ok());
  EXPECT_EQ(deployment_->server()
                .heap()
                .Read(db_.link_oids[0])
                .value()
                .GetByName(cat, "Utilization")
                .value(),
            before.GetByName(cat, "Utilization").value());
}

}  // namespace
}  // namespace idba
