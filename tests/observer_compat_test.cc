#include "core/observer_compat.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "nms/display_classes.h"
#include "nms/network_model.h"

namespace idba {
namespace {

using observer_compat::ObCommMode;
using observer_compat::ObLockType;
using observer_compat::ObServerClient;

class ObServerCompatTest : public ::testing::Test {
 protected:
  void Init(NotifyProtocol protocol) {
    DeploymentOptions opts;
    opts.dlm.protocol = protocol;
    deployment_ = std::make_unique<Deployment>(opts);
    NmsConfig config;
    config.num_nodes = 4;
    config.sites = 1;
    config.buildings_per_site = 1;
    config.racks_per_building = 1;
    config.devices_per_rack = 1;
    db_ = PopulateNms(&deployment_->server(), config).value();
  }
  std::unique_ptr<Deployment> deployment_;
  NmsDatabase db_;
};

TEST_F(ObServerCompatTest, ProtocolMapping) {
  EXPECT_EQ(observer_compat::RequiredProtocol(ObCommMode::kUNotify),
            NotifyProtocol::kPostCommit);
  EXPECT_EQ(observer_compat::RequiredProtocol(ObCommMode::kWNotify),
            NotifyProtocol::kEarlyNotify);
  EXPECT_TRUE(observer_compat::ProtocolServes(NotifyProtocol::kPostCommit,
                                              ObCommMode::kUNotify));
  EXPECT_TRUE(observer_compat::ProtocolServes(NotifyProtocol::kEarlyNotify,
                                              ObCommMode::kUNotify));
  EXPECT_FALSE(observer_compat::ProtocolServes(NotifyProtocol::kPostCommit,
                                               ObCommMode::kWNotify));
  EXPECT_TRUE(observer_compat::ProtocolServes(NotifyProtocol::kEarlyNotify,
                                              ObCommMode::kWNotify));
}

TEST_F(ObServerCompatTest, NrReadLockNeverBlocksWriters) {
  Init(NotifyProtocol::kPostCommit);
  ObServerClient ob(&deployment_->dlm(), 100, ObCommMode::kUNotify);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(ob.SetLock(oid, ObLockType::kNrRead).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 1u);

  // Another transaction can still write the object (the NR-READ promise).
  auto writer = deployment_->NewSession(101);
  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.5)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  EXPECT_TRUE(writer->client().Commit(t).ok());

  ASSERT_TRUE(ob.ReleaseLock(oid).ok());
  EXPECT_EQ(deployment_->dlm().holder_count(oid), 0u);
}

TEST_F(ObServerCompatTest, UNotifyDeliversUpdateNotifications) {
  Init(NotifyProtocol::kPostCommit);
  // An ObServer-style holder registered through a real session (so the
  // notification has an inbox to land in).
  auto holder_session = deployment_->NewSession(100);
  ObServerClient ob(&deployment_->dlm(), 100, ObCommMode::kUNotify);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(ob.SetLock(oid, ObLockType::kNrRead).ok());

  auto writer = deployment_->NewSession(101);
  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.9)).ok());
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  ASSERT_TRUE(writer->client().Commit(t).ok());

  EXPECT_EQ(holder_session->client().inbox().pending(), 1u);
}

TEST_F(ObServerCompatTest, WNotifyRequiresEarlyNotifyDlm) {
  Init(NotifyProtocol::kPostCommit);
  ObServerClient ob(&deployment_->dlm(), 100, ObCommMode::kWNotify);
  EXPECT_EQ(ob.SetLock(db_.link_oids[0], ObLockType::kNrRead).code(),
            StatusCode::kNotSupported);

  Init(NotifyProtocol::kEarlyNotify);
  ObServerClient ob2(&deployment_->dlm(), 100, ObCommMode::kWNotify);
  EXPECT_TRUE(ob2.SetLock(db_.link_oids[0], ObLockType::kNrRead).ok());
}

TEST_F(ObServerCompatTest, WNotifyDeliversIntentNotifications) {
  Init(NotifyProtocol::kEarlyNotify);
  auto holder_session = deployment_->NewSession(100);
  ObServerClient ob(&deployment_->dlm(), 100, ObCommMode::kWNotify);
  Oid oid = db_.link_oids[0];
  ASSERT_TRUE(ob.SetLock(oid, ObLockType::kNrRead).ok());

  auto writer = deployment_->NewSession(101);
  const SchemaCatalog& cat = writer->client().schema();
  TxnId t = writer->client().Begin();
  DatabaseObject link = writer->client().Read(t, oid).value();
  ASSERT_TRUE(link.SetByName(cat, "Utilization", Value(0.9)).ok());
  // W-NOTIFY: the notification fires at the write-lock REQUEST...
  ASSERT_TRUE(writer->client().Write(t, std::move(link)).ok());
  EXPECT_GE(holder_session->client().inbox().pending(), 1u);
  size_t after_intent = holder_session->client().inbox().pending();
  // ...and the commit resolution follows.
  ASSERT_TRUE(writer->client().Commit(t).ok());
  EXPECT_GT(holder_session->client().inbox().pending(), after_intent);
}

}  // namespace
}  // namespace idba
