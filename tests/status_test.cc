#include "common/status.h"

#include <gtest/gtest.h>

namespace idba {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("object 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "object 42");
  EXPECT_EQ(st.ToString(), "NotFound: object 42");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Deadlock("").code(), StatusCode::kDeadlock);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::TimedOut("").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Busy("").code(), StatusCode::kBusy);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Deadlock("x").IsDeadlock());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_FALSE(Status::Busy("x").IsDeadlock());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Busy("later");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  IDBA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IDBA_ASSIGN_OR_RETURN(int h, Half(x));
  IDBA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(MacroTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlock), "Deadlock");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

}  // namespace
}  // namespace idba
